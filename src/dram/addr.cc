#include "dram/addr.hh"

#include "common/log.hh"
#include "resilience/error.hh"

namespace ccsim::dram {

MapScheme
parseMapScheme(const std::string &name)
{
    if (name == "RoBaRaCoCh")
        return MapScheme::RoBaRaCoCh;
    if (name == "RoRaBaCoCh")
        return MapScheme::RoRaBaCoCh;
    if (name == "RoCoBaRaCh")
        return MapScheme::RoCoBaRaCh;
    throw resilience::SimError(resilience::ErrorKind::InvalidConfig,
                               "unknown address mapping scheme '" + name +
                                   "'");
}

const char *
mapSchemeName(MapScheme scheme)
{
    switch (scheme) {
      case MapScheme::RoBaRaCoCh:
        return "RoBaRaCoCh";
      case MapScheme::RoRaBaCoCh:
        return "RoRaBaCoCh";
      case MapScheme::RoCoBaRaCh:
        return "RoCoBaRaCh";
    }
    return "?";
}

AddressMapper::AddressMapper(const DramOrg &org, MapScheme scheme)
    : scheme_(scheme)
{
    chBits_ = log2Exact(static_cast<std::uint64_t>(org.channels));
    raBits_ = log2Exact(static_cast<std::uint64_t>(org.ranksPerChannel));
    baBits_ = log2Exact(static_cast<std::uint64_t>(org.banksPerRank));
    roBits_ = log2Exact(static_cast<std::uint64_t>(org.rowsPerBank));
    coBits_ = log2Exact(static_cast<std::uint64_t>(org.columnsPerRow()));
    lineShift_ = log2Exact(static_cast<std::uint64_t>(org.lineBytes));
    CCSIM_ASSERT(chBits_ >= 0 && raBits_ >= 0 && baBits_ >= 0 &&
                     roBits_ >= 0 && coBits_ >= 0 && lineShift_ >= 0,
                 "organization fields must be powers of two");
    numLines_ = Addr(1) << (chBits_ + raBits_ + baBits_ + roBits_ + coBits_);
}

namespace {

/** Pop `bits` LSBs from `v`. */
inline int
take(Addr &v, int bits)
{
    int field = static_cast<int>(v & ((Addr(1) << bits) - 1));
    v >>= bits;
    return field;
}

/** Append `field` (of width `bits`) above the current value. */
inline void
put(Addr &v, int &shift, int field, int bits)
{
    v |= static_cast<Addr>(field) << shift;
    shift += bits;
}

} // namespace

DramAddr
AddressMapper::decode(Addr line_addr) const
{
    CCSIM_ASSERT(line_addr < numLines_, "line address out of range");
    DramAddr a;
    Addr v = line_addr;
    // Fields are listed LSB-first (reverse of the scheme name).
    switch (scheme_) {
      case MapScheme::RoBaRaCoCh:
        a.channel = take(v, chBits_);
        a.col = take(v, coBits_);
        a.rank = take(v, raBits_);
        a.bank = take(v, baBits_);
        a.row = take(v, roBits_);
        break;
      case MapScheme::RoRaBaCoCh:
        a.channel = take(v, chBits_);
        a.col = take(v, coBits_);
        a.bank = take(v, baBits_);
        a.rank = take(v, raBits_);
        a.row = take(v, roBits_);
        break;
      case MapScheme::RoCoBaRaCh:
        a.channel = take(v, chBits_);
        a.rank = take(v, raBits_);
        a.bank = take(v, baBits_);
        a.col = take(v, coBits_);
        a.row = take(v, roBits_);
        break;
    }
    return a;
}

Addr
AddressMapper::encode(const DramAddr &a) const
{
    Addr v = 0;
    int shift = 0;
    switch (scheme_) {
      case MapScheme::RoBaRaCoCh:
        put(v, shift, a.channel, chBits_);
        put(v, shift, a.col, coBits_);
        put(v, shift, a.rank, raBits_);
        put(v, shift, a.bank, baBits_);
        put(v, shift, a.row, roBits_);
        break;
      case MapScheme::RoRaBaCoCh:
        put(v, shift, a.channel, chBits_);
        put(v, shift, a.col, coBits_);
        put(v, shift, a.bank, baBits_);
        put(v, shift, a.rank, raBits_);
        put(v, shift, a.row, roBits_);
        break;
      case MapScheme::RoCoBaRaCh:
        put(v, shift, a.channel, chBits_);
        put(v, shift, a.rank, raBits_);
        put(v, shift, a.bank, baBits_);
        put(v, shift, a.col, coBits_);
        put(v, shift, a.row, roBits_);
        break;
    }
    return v;
}

} // namespace ccsim::dram
