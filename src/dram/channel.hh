/**
 * @file
 * Channel-scope DRAM model: owns the ranks behind one command/data bus
 * and enforces cross-rank data-bus constraints (tRTRS). This is the
 * device-facing API used by the memory controller.
 */

#ifndef CCSIM_DRAM_CHANNEL_HH
#define CCSIM_DRAM_CHANNEL_HH

#include <vector>

#include "common/types.hh"
#include "dram/rank.hh"

namespace ccsim::resilience {
class SnapshotWriter;
class SnapshotReader;
} // namespace ccsim::resilience

namespace ccsim::dram {

class Channel
{
  public:
    explicit Channel(const DramSpec &spec);

    Rank &rank(int idx) { return ranks_[idx]; }
    const Rank &rank(int idx) const { return ranks_[idx]; }
    int numRanks() const { return static_cast<int>(ranks_.size()); }

    const DramSpec &spec() const { return spec_; }

    /** Full (channel+rank+bank scope) legality of `cmd` at `now`. */
    bool canIssue(const Command &cmd, Cycle now) const;

    /** Lower bound on the issue cycle of `cmd` (for scheduling). */
    Cycle earliest(const Command &cmd) const;

    /**
     * Cross-rank data-bus gate (tRTRS) for a column command issued on
     * `rank` at `now` — the channel-scope piece of canIssue(), hoisted
     * per rank out of the FR-FCFS scan.
     */
    bool
    busReady(int rank, bool is_read, Cycle now) const
    {
        if (rank == lastBusRank_ || lastBusRank_ < 0)
            return true;
        const DramTiming &t = spec_.timing;
        Cycle data_start = now + (is_read ? Cycle(t.tCL) : Cycle(t.tCWL));
        return data_start >= busFreeAt_ + Cycle(t.tRTRS);
    }

    /**
     * Channel-scope component of a column command's earliest issue
     * cycle on `rank` (0 when no cross-rank turnaround applies) — the
     * bus term of earliest(), hoisted per rank for schedulers.
     */
    Cycle
    busEarliestBase(int rank, bool is_read) const
    {
        if (rank == lastBusRank_ || lastBusRank_ < 0)
            return 0;
        const DramTiming &t = spec_.timing;
        Cycle lat = is_read ? Cycle(t.tCL) : Cycle(t.tCWL);
        Cycle need = busFreeAt_ + Cycle(t.tRTRS);
        return need > lat ? need - lat : 0;
    }

    /** Apply `cmd` at `now`; `eff` required for ACT. */
    void issue(const Command &cmd, Cycle now, const EffActTiming *eff);

    /** Cycle at which read data for a RD issued at `issue_cycle` is done. */
    Cycle
    readDataDone(Cycle issue_cycle) const
    {
        const DramTiming &t = spec_.timing;
        return issue_cycle + t.tCL + t.tBL;
    }

    /** Checkpoint: data-bus gate + every rank and bank. */
    void saveState(resilience::SnapshotWriter &w) const;
    void loadState(resilience::SnapshotReader &r);

  private:
    DramSpec spec_;
    std::vector<Rank> ranks_;

    // Cross-rank data bus tracking. Within one rank tCCD/turnaround
    // already spaces bursts; across ranks we add tRTRS.
    Cycle busFreeAt_ = 0;
    int lastBusRank_ = -1;
};

} // namespace ccsim::dram

#endif // CCSIM_DRAM_CHANNEL_HH
