#include "vm/mmu.hh"

#include "resilience/serial.hh"

#include <algorithm>

#include "common/log.hh"

namespace ccsim::vm {

void
Mmu::initCommon(int line_bytes)
{
    lineShift_ = log2Exact(static_cast<std::uint64_t>(line_bytes));
    pageShift_ = log2Exact(
        static_cast<std::uint64_t>(config_.effectivePageBytes()));
    pageLines_ = static_cast<Addr>(config_.effectivePageBytes()) /
                 line_bytes;
    CCSIM_ASSERT(lineShift_ >= 0 && pageShift_ > lineShift_,
                 "page size must be a power-of-two multiple of a line");
    if (config_.pwc.enable)
        pwc_ = std::make_unique<Pwc>(config_.pwc, config_.walkLevels());
}

Mmu::Mmu(const VmConfig &config, int core_id, Addr region_base_line,
         Addr region_lines, int line_bytes, std::uint64_t schedule_seed)
    : config_(config),
      coreId_(core_id),
      l1_(config.l1Entries, config.l1Ways),
      l2_(config.l2Entries, config.l2Ways),
      owned_(std::make_unique<AddressSpace>(config, core_id,
                                            region_base_line,
                                            region_lines, line_bytes)),
      schedRng_(mix64(schedule_seed ^
                      (0x5C1Dull + std::uint64_t(core_id) *
                                       0x9E3779B97F4A7C15ull)))
{
    spaces_.push_back(owned_.get());
    space_ = owned_.get();
    initCommon(line_bytes);
}

Mmu::Mmu(const VmConfig &config, int core_id,
         const std::vector<AddressSpace *> &spaces, int line_bytes,
         std::uint64_t schedule_seed)
    : config_(config),
      coreId_(core_id),
      l1_(config.l1Entries, config.l1Ways),
      l2_(config.l2Entries, config.l2Ways),
      spaces_(spaces),
      schedRng_(mix64(schedule_seed ^
                      (0x5C1Dull + std::uint64_t(core_id) *
                                       0x9E3779B97F4A7C15ull)))
{
    CCSIM_ASSERT(!spaces_.empty(), "Mmu needs at least one address space");
    space_ = spaces_[static_cast<std::size_t>(core_id) % spaces_.size()];
    initCommon(line_bytes);
}

void
Mmu::finishTranslation(std::uint64_t ppn)
{
    translatedLine_ = space_->dataBaseLine() + ppn * pageLines_ +
                      ((xlatVaddr_ >> lineShift_) & (pageLines_ - 1));
}

Mmu::Result
Mmu::beginTranslate(Addr vaddr, CpuCycle now)
{
    xlatVaddr_ = vaddr;
    translatedLine_ = kNoAddr;
    Addr vpn = vaddr >> pageShift_;
    const std::uint32_t asid = space_->asid();
    ++stats_.lookups;
    Addr ppn;
    if (l1_.lookup(vpn, ppn, asid)) {
        ++stats_.l1Hits;
        finishTranslation(ppn);
        return Result::L1Hit;
    }
    if (l2_.lookup(vpn, ppn, asid)) {
        ++stats_.l2Hits;
        l1_.insert(vpn, ppn, asid);
        finishTranslation(ppn);
        // The caller holds the result for l2HitLatency before using it
        // (completeL2 is a semantic no-op kept as the state handshake).
        return Result::L2Hit;
    }
    ++stats_.walks;
    walkStart_ = now;
    walkLevel_ = 0;
    if (pwc_) {
        // A PWC hit at upper level k skips the fetches of levels 0..k;
        // the walk resumes at the first uncached level.
        int deepest = pwc_->deepestCachedLevel(vpn, asid);
        walkLevel_ = deepest + 1;
    }
    pteLine_ = space_->pageTable().pteLineFor(vpn, walkLevel_);
    ++stats_.pteFetches;
    return Result::Miss;
}

void
Mmu::completeL2()
{
    CCSIM_ASSERT(translatedLine_ != kNoAddr,
                 "completeL2 without a pending L2 hit");
}

bool
Mmu::pteReturned(CpuCycle now)
{
    Addr vpn = xlatVaddr_ >> pageShift_;
    const std::uint32_t asid = space_->asid();
    if (pwc_ && walkLevel_ < space_->pageTable().levels() - 1)
        pwc_->fill(vpn, walkLevel_, asid);
    ++walkLevel_;
    if (walkLevel_ < space_->pageTable().levels()) {
        pteLine_ = space_->pageTable().pteLineFor(vpn, walkLevel_);
        ++stats_.pteFetches;
        return false;
    }
    // Leaf PTE returned: resolve (first touch allocates, possibly
    // reclaiming a victim page), fill TLBs.
    AddressSpace::MapOutcome out = space_->mapPage(vpn, now);
    if (out.firstTouch)
        ++stats_.pagesMapped;
    if (out.remapped) {
        ++stats_.remaps;
        ++stats_.shootdownsSent;
        // Local invalidation is free (the initiator is mid-walk);
        // remote cores pay the shootdown stall via the System hook.
        l1_.invalidate(out.victimVpn, asid);
        l2_.invalidate(out.victimVpn, asid);
        shootdownPending_ = true;
        shootdownAsid_ = asid;
        shootdownVpn_ = out.victimVpn;
    }
    l2_.insert(vpn, out.ppn, asid);
    l1_.insert(vpn, out.ppn, asid);
    finishTranslation(out.ppn);
    stats_.walkCycleSum += now - walkStart_;
    pteLine_ = kNoAddr;
    return true;
}

void
Mmu::contextSwitch()
{
    if (spaces_.size() <= 1)
        return;
    std::size_t cur = 0;
    for (std::size_t i = 0; i < spaces_.size(); ++i)
        if (spaces_[i] == space_)
            cur = i;
    // Seed-derived pick of a *different* space: a switch always
    // changes the address space (a slice given back to the same
    // process is not a switch).
    std::size_t next =
        (cur + 1 + schedRng_.below(spaces_.size() - 1)) % spaces_.size();
    space_ = spaces_[next];
    ++stats_.contextSwitches;
    if (config_.mp.flushOnSwitch) {
        l1_.flush();
        l2_.flush();
        if (pwc_)
            pwc_->flush();
    }
}

std::uint64_t
Mmu::nextQuantum()
{
    CCSIM_ASSERT(config_.mp.quantumJitter >= 0.0 &&
                     config_.mp.quantumJitter <= 1.0,
                 "quantum jitter is a fraction in [0,1]");
    std::uint64_t q = config_.mp.switchQuantum;
    if (config_.mp.quantumJitter > 0.0) {
        auto span =
            static_cast<std::uint64_t>(double(q) * config_.mp.quantumJitter);
        if (span)
            q = q - span + schedRng_.below(2 * span + 1);
    }
    return std::max<std::uint64_t>(q, 1);
}

bool
Mmu::takePendingShootdown(std::uint32_t &asid, Addr &vpn)
{
    if (!shootdownPending_)
        return false;
    shootdownPending_ = false;
    asid = shootdownAsid_;
    vpn = shootdownVpn_;
    return true;
}

void
Mmu::invalidateTranslation(std::uint32_t asid, Addr vpn)
{
    l1_.invalidate(vpn, asid);
    l2_.invalidate(vpn, asid);
    ++stats_.shootdownsReceived;
}

const VmStats &
Mmu::stats() const
{
    // Gauge of table frames: meaningful per-Mmu only when the space is
    // owned (legacy mode); shared spaces are summed once by the System.
    stats_.ptTables = owned_ ? owned_->pageTable().tablesAllocated() : 0;
    if (pwc_) {
        const Pwc::Stats &p = pwc_->stats();
        stats_.pwcLookups = p.lookups;
        for (std::size_t i = 0; i < stats_.pwcHitsByLevel.size(); ++i)
            stats_.pwcHitsByLevel[i] =
                i < p.hitsByLevel.size() ? p.hitsByLevel[i] : 0;
        stats_.pwcSkippedFetches = p.skippedFetches;
    }
    return stats_;
}

void
Mmu::resetStats()
{
    stats_ = VmStats();
    // The PWC keeps its own counters (mirrored into VmStats by
    // stats()); clear them too so warmup-excluded runs report correct
    // hit rates — same contract as the provider/HCRAC reset path.
    if (pwc_)
        pwc_->resetStats();
}


void
Mmu::saveState(resilience::SnapshotWriter &w) const
{
    l1_.saveState(w);
    l2_.saveState(w);
    w.put(static_cast<bool>(pwc_));
    if (pwc_)
        pwc_->saveState(w);
    w.put(static_cast<bool>(owned_));
    if (owned_)
        owned_->saveState(w);
    std::uint32_t space_idx = 0;
    for (std::size_t i = 0; i < spaces_.size(); ++i)
        if (spaces_[i] == space_) {
            space_idx = static_cast<std::uint32_t>(i);
            break;
        }
    w.put(space_idx);
    w.put(schedRng_.state());
    w.put(xlatVaddr_);
    w.put(translatedLine_);
    w.put(walkLevel_);
    w.put(pteLine_);
    w.put(walkStart_);
    w.put(shootdownPending_);
    w.put(shootdownAsid_);
    w.put(shootdownVpn_);
    w.put(stats_);
}

void
Mmu::loadState(resilience::SnapshotReader &r)
{
    l1_.loadState(r);
    l2_.loadState(r);
    bool has_pwc = r.get<bool>();
    if (has_pwc != static_cast<bool>(pwc_))
        throw resilience::SimError(
            resilience::ErrorKind::CorruptSnapshot,
            "page-walk-cache presence mismatch in snapshot");
    if (pwc_)
        pwc_->loadState(r);
    bool owns_space = r.get<bool>();
    if (owns_space != static_cast<bool>(owned_))
        throw resilience::SimError(
            resilience::ErrorKind::CorruptSnapshot,
            "address-space ownership mismatch in snapshot");
    if (owned_)
        owned_->loadState(r);
    std::uint32_t space_idx = r.get<std::uint32_t>();
    if (space_idx >= spaces_.size())
        throw resilience::SimError(
            resilience::ErrorKind::CorruptSnapshot,
            "scheduled address-space index out of range in snapshot");
    space_ = spaces_[space_idx];
    schedRng_.setState(r.get<std::array<std::uint64_t, 4>>());
    r.get(xlatVaddr_);
    r.get(translatedLine_);
    r.get(walkLevel_);
    r.get(pteLine_);
    r.get(walkStart_);
    r.get(shootdownPending_);
    r.get(shootdownAsid_);
    r.get(shootdownVpn_);
    r.get(stats_);
}

} // namespace ccsim::vm
