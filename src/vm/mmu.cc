#include "vm/mmu.hh"

#include "common/log.hh"

namespace ccsim::vm {

Mmu::RegionSplit
Mmu::splitRegion(const VmConfig &config, Addr region_base_line,
                 Addr region_lines, int line_bytes)
{
    std::uint64_t region_bytes =
        region_lines * static_cast<std::uint64_t>(line_bytes);
    auto pages = static_cast<std::uint64_t>(
        double(region_bytes / PageTable::kTableBytes) *
        config.ptPoolFraction);
    RegionSplit s;
    s.ptPages = pages ? pages : 1;
    std::uint64_t pt_lines =
        s.ptPages * (PageTable::kTableBytes / line_bytes);
    s.ptBaseLine = region_base_line + region_lines - pt_lines;
    s.dataLines = region_lines - pt_lines;
    return s;
}

Mmu::Mmu(const VmConfig &config, int core_id, Addr region_base_line,
         Addr region_lines, int line_bytes)
    : Mmu(config, core_id, region_base_line, line_bytes,
          splitRegion(config, region_base_line, region_lines,
                      line_bytes))
{}

Mmu::Mmu(const VmConfig &config, int core_id, Addr region_base_line,
         int line_bytes, const RegionSplit &split)
    : config_(config),
      coreId_(core_id),
      lineShift_(log2Exact(static_cast<std::uint64_t>(line_bytes))),
      pageShift_(log2Exact(
          static_cast<std::uint64_t>(config.effectivePageBytes()))),
      pageLines_(static_cast<Addr>(config.effectivePageBytes()) /
                 line_bytes),
      dataBaseLine_(region_base_line),
      dataFrames_(split.dataLines / pageLines_),
      l1_(config.l1Entries, config.l1Ways),
      l2_(config.l2Entries, config.l2Ways),
      alloc_(config.alloc, dataFrames_, config.fragSeed,
             config.fragDegree, core_id),
      pageTable_(config.walkLevels(), split.ptBaseLine, split.ptPages,
                 line_bytes)
{
    CCSIM_ASSERT(lineShift_ >= 0 && pageShift_ > lineShift_,
                 "page size must be a power-of-two multiple of a line");
    CCSIM_ASSERT(dataFrames_ > 0, "region too small for a data frame");
}

Addr
Mmu::mapPage(Addr vpn)
{
    auto it = pageMap_.find(vpn);
    if (it != pageMap_.end())
        return it->second;
    std::uint64_t frame = alloc_.frameFor(touchCount_++);
    pageMap_.emplace(vpn, frame);
    ++stats_.pagesMapped;
    return frame;
}

void
Mmu::finishTranslation(Addr ppn)
{
    translatedLine_ = dataBaseLine_ + ppn * pageLines_ +
                      ((xlatVaddr_ >> lineShift_) & (pageLines_ - 1));
}

Mmu::Result
Mmu::beginTranslate(Addr vaddr, CpuCycle now)
{
    xlatVaddr_ = vaddr;
    translatedLine_ = kNoAddr;
    Addr vpn = vaddr >> pageShift_;
    ++stats_.lookups;
    Addr ppn;
    if (l1_.lookup(vpn, ppn)) {
        ++stats_.l1Hits;
        finishTranslation(ppn);
        return Result::L1Hit;
    }
    if (l2_.lookup(vpn, ppn)) {
        ++stats_.l2Hits;
        l1_.insert(vpn, ppn);
        finishTranslation(ppn);
        // The caller holds the result for l2HitLatency before using it
        // (completeL2 is a semantic no-op kept as the state handshake).
        return Result::L2Hit;
    }
    ++stats_.walks;
    walkLevel_ = 0;
    walkStart_ = now;
    pteLine_ = pageTable_.pteLineFor(vpn, 0);
    ++stats_.pteFetches;
    return Result::Miss;
}

void
Mmu::completeL2()
{
    CCSIM_ASSERT(translatedLine_ != kNoAddr,
                 "completeL2 without a pending L2 hit");
}

bool
Mmu::pteReturned(CpuCycle now)
{
    Addr vpn = xlatVaddr_ >> pageShift_;
    ++walkLevel_;
    if (walkLevel_ < pageTable_.levels()) {
        pteLine_ = pageTable_.pteLineFor(vpn, walkLevel_);
        ++stats_.pteFetches;
        return false;
    }
    // Leaf PTE returned: resolve (first touch allocates), fill TLBs.
    Addr ppn = mapPage(vpn);
    l2_.insert(vpn, ppn);
    l1_.insert(vpn, ppn);
    finishTranslation(ppn);
    stats_.walkCycleSum += now - walkStart_;
    pteLine_ = kNoAddr;
    return true;
}

const VmStats &
Mmu::stats() const
{
    stats_.ptTables = pageTable_.tablesAllocated();
    return stats_;
}

} // namespace ccsim::vm
