/**
 * @file
 * Radix page table modeled after x86-64 4-level walks.
 *
 * Each level's table is one 4 KB frame of 512 eight-byte entries; the
 * virtual page number splits into 9-bit indices from the root down
 * (PML4 → PDPT → PD → PT for 4 KB pages; walks for 2 MB huge pages
 * stop one level earlier at the PD). Table frames are allocated on
 * demand, sequentially, from a reserved page-table pool at the top of
 * the owning core's physical region — so PTE fetches land in DRAM rows
 * of their own, distinct from data rows, and charge the HCRAC exactly
 * like data traffic does.
 *
 * Only PTE *addresses* are modeled (the simulator carries no data):
 * `pteLineFor` yields the physical cache-line address the walker must
 * fetch for a given (vpn, level), allocating intermediate table frames
 * the first time a walk touches them. Allocation order follows walk
 * order, which is deterministic and kernel-invariant.
 */

#ifndef CCSIM_VM_PAGE_TABLE_HH
#define CCSIM_VM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace ccsim::resilience {
class SnapshotWriter;
class SnapshotReader;
} // namespace ccsim::resilience

namespace ccsim::vm {

class PageTable
{
  public:
    static constexpr int kIndexBits = 9;   ///< 512 entries per table.
    static constexpr int kPteBytes = 8;    ///< x86-64 PTE size.
    static constexpr int kTableBytes = 4096;

    /**
     * @param levels radix depth (4 for 4 KB pages, 3 for 2 MB).
     * @param pool_base_line first line of the page-table frame pool.
     * @param pool_pages 4 KB frames available for tables (wraps when
     *        exhausted; a few MB of tables map many GB of footprint).
     * @param line_bytes cache-line size (PTE fetch granularity).
     */
    PageTable(int levels, Addr pool_base_line, std::uint64_t pool_pages,
              int line_bytes);

    /**
     * Physical line address of the PTE consulted at walk `level`
     * (0 = root) for `vpn`. Allocates the level's table frame on first
     * touch.
     */
    Addr pteLineFor(Addr vpn, int level);

    int levels() const { return levels_; }

    /** Distinct table frames allocated so far (all levels). */
    std::uint64_t tablesAllocated() const { return tables_.size(); }

    /** Checkpoint: allocation cursor + the (lookup-only, key-sorted)
        table map. */
    void saveState(resilience::SnapshotWriter &w) const;
    void loadState(resilience::SnapshotReader &r);

  private:
    int levels_;
    Addr poolBaseLine_;
    std::uint64_t poolPages_;
    int linesPerTable_;
    int pteShift_; ///< log2(line_bytes / kPteBytes): PTEs per line.
    std::uint64_t nextFrame_ = 0;
    /** (level, table-id) -> pool-relative table frame. */
    std::unordered_map<std::uint64_t, std::uint64_t> tables_;
};

} // namespace ccsim::vm

#endif // CCSIM_VM_PAGE_TABLE_HH
