/**
 * @file
 * Pluggable physical-page allocators: the policy that decides which
 * physical frame backs each first-touched virtual page, and therefore
 * how virtual-page adjacency maps onto DRAM-row adjacency — the knob
 * the fragmentation ablation (bench/abl_vm_fragmentation) sweeps.
 *
 *  - Contiguous:        frames handed out sequentially in touch order
 *                       (an idle-system OS with a defragmented free
 *                       list); preserves row adjacency for streams.
 *  - Fragmented(s, d):  the frame order is a partial Fisher-Yates
 *                       shuffle seeded by `s`: each position is swapped
 *                       with a random later one with probability `d`.
 *                       d=0 degenerates to Contiguous; d=1 is a fully
 *                       random free list (a long-running fragmented
 *                       system). Higher d scatters adjacent virtual
 *                       pages across unrelated rows.
 *  - HugePage:          2 MB frames handed out sequentially; row
 *                       adjacency is preserved across a whole huge
 *                       page and walks are one level shorter.
 *
 * Allocation is lazy (first touch) and wraps modulo the pool when the
 * virtual footprint exceeds it — pages then share frames, which only
 * matters as address reuse, never as data (the simulator carries no
 * data). Everything is deterministic given (policy, seed, touch order),
 * and touch order is identical across simulation kernels by the
 * bit-identical-schedule invariant.
 */

#ifndef CCSIM_VM_PAGE_ALLOC_HH
#define CCSIM_VM_PAGE_ALLOC_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ccsim::vm {

/** Allocation policy (see file header). */
enum class PageAlloc {
    Contiguous,
    Fragmented,
    HugePage,
};

const char *pageAllocName(PageAlloc policy);

class PageAllocator
{
  public:
    /**
     * @param policy frame-ordering policy.
     * @param pool_frames frames available (data region / frame size).
     * @param frag_seed Fragmented: shuffle seed (mixed with `core_id`).
     * @param frag_degree Fragmented: per-position shuffle probability.
     */
    PageAllocator(PageAlloc policy, std::uint64_t pool_frames,
                  std::uint64_t frag_seed, double frag_degree,
                  int core_id);

    /** Frame index (pool-relative) of the `touch_idx`-th touched page. */
    std::uint64_t
    frameFor(std::uint64_t touch_idx) const
    {
        std::uint64_t slot = touch_idx % poolFrames_;
        return order_.empty() ? slot : order_[slot];
    }

    std::uint64_t poolFrames() const { return poolFrames_; }
    PageAlloc policy() const { return policy_; }

  private:
    PageAlloc policy_;
    std::uint64_t poolFrames_;
    /** Shuffled frame order (Fragmented only; empty = identity). */
    std::vector<std::uint32_t> order_;
};

} // namespace ccsim::vm

#endif // CCSIM_VM_PAGE_ALLOC_HH
