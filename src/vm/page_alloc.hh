/**
 * @file
 * Pluggable physical-page allocators: the policy that decides which
 * physical frame backs each first-touched virtual page, and therefore
 * how virtual-page adjacency maps onto DRAM-row adjacency — the knob
 * the fragmentation ablation (bench/abl_vm_fragmentation) sweeps.
 *
 *  - Contiguous:        frames handed out sequentially in touch order
 *                       (an idle-system OS with a defragmented free
 *                       list); preserves row adjacency for streams.
 *  - Fragmented(s, d):  the frame order is a partial Fisher-Yates
 *                       shuffle seeded by `s`: each position is swapped
 *                       with a random later one with probability `d`.
 *                       d=0 degenerates to Contiguous; d=1 is a fully
 *                       random free list (a long-running fragmented
 *                       system). Higher d scatters adjacent virtual
 *                       pages across unrelated rows.
 *  - HugePage:          2 MB frames handed out sequentially; row
 *                       adjacency is preserved across a whole huge
 *                       page and walks are one level shorter.
 *
 * **Allocator aging** (AgingSpec): instead of fixing the shuffle at
 * construction, the per-position swap decision is deferred to the
 * moment the position is first handed out, using the fragmentation
 * degree in force at that simulated time — a linear ramp from the base
 * `frag_degree` to `maxDegree` over `rampCycles` CPU cycles. A long
 * run therefore starts allocating near-contiguously and degrades to a
 * scrambled free list, reproducing dynamically the contiguous →
 * fragmented HCRAC-hit decay the static ablation measures. With aging
 * disabled (the default) the constructor-time shuffle is bit-identical
 * to the pre-aging allocator.
 *
 * Allocation is lazy (first touch) and wraps modulo the pool when the
 * virtual footprint exceeds it — pages then share frames, which only
 * matters as address reuse, never as data (the simulator carries no
 * data). Everything is deterministic given (policy, seed, touch order,
 * touch times), and touch order/time is identical across simulation
 * kernels by the bit-identical-schedule invariant.
 */

#ifndef CCSIM_VM_PAGE_ALLOC_HH
#define CCSIM_VM_PAGE_ALLOC_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace ccsim::resilience {
class SnapshotWriter;
class SnapshotReader;
} // namespace ccsim::resilience

namespace ccsim::vm {

/** Allocation policy (see file header). */
enum class PageAlloc {
    Contiguous,
    Fragmented,
    HugePage,
};

const char *pageAllocName(PageAlloc policy);

/** Time-varying fragmentation (see file header). */
struct AgingSpec {
    double maxDegree = -1.0;   ///< < 0: aging disabled.
    CpuCycle rampCycles = 0;   ///< Base → max over this many CPU cycles.

    bool
    enabled() const
    {
        return maxDegree >= 0.0 && rampCycles > 0;
    }
};

class PageAllocator
{
  public:
    /**
     * @param policy frame-ordering policy.
     * @param pool_frames frames available (data region / frame size).
     * @param frag_seed Fragmented: shuffle seed (mixed with `core_id`).
     * @param frag_degree Fragmented: per-position shuffle probability
     *        (the aging base degree when `aging` is enabled).
     * @param core_id owning core (legacy) or address-space id.
     * @param aging optional time-varying fragmentation ramp.
     */
    PageAllocator(PageAlloc policy, std::uint64_t pool_frames,
                  std::uint64_t frag_seed, double frag_degree,
                  int core_id, AgingSpec aging = {});

    /** Frame index (pool-relative) of the `touch_idx`-th touched page
        (static policies; aging callers use frameForAt). */
    std::uint64_t
    frameFor(std::uint64_t touch_idx) const
    {
        std::uint64_t slot = touch_idx % poolFrames_;
        return order_.empty() ? slot : order_[slot];
    }

    /**
     * Aging-aware allocation: the `touch_idx`-th touched page at CPU
     * cycle `now`. The first pass over the pool settles each
     * position's shuffle decision at degreeAt(now); later wraps reuse
     * the settled order. Identical to frameFor when aging is off.
     */
    std::uint64_t frameForAt(std::uint64_t touch_idx, CpuCycle now);

    /** Fragmentation degree in force at `now` (aging ramp). */
    double degreeAt(CpuCycle now) const;

    std::uint64_t poolFrames() const { return poolFrames_; }
    PageAlloc policy() const { return policy_; }
    const AgingSpec &aging() const { return aging_; }

    /** Checkpoint: the lazy-shuffle RNG stream and the (possibly
        partially settled) frame order. */
    void saveState(resilience::SnapshotWriter &w) const;
    void loadState(resilience::SnapshotReader &r);

  private:
    PageAlloc policy_;
    std::uint64_t poolFrames_;
    double baseDegree_;
    AgingSpec aging_;
    Rng rng_; ///< Aging-mode lazy-shuffle stream (unused otherwise).
    /** Shuffled frame order (Fragmented/aging only; empty = identity). */
    std::vector<std::uint32_t> order_;
};

} // namespace ccsim::vm

#endif // CCSIM_VM_PAGE_ALLOC_HH
