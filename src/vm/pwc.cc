#include "vm/pwc.hh"

#include "resilience/serial.hh"

#include "common/log.hh"

namespace ccsim::vm {

Pwc::Pwc(const PwcConfig &config, int levels) : levels_(levels)
{
    CCSIM_ASSERT(levels >= 2 && levels <= kMaxLevels,
                 "PWC needs a multi-level walker");
    CCSIM_ASSERT(config.entriesPerLevel > 0 && config.ways > 0,
                 "bad PWC geometry");
    arrays_.reserve(static_cast<std::size_t>(levels_ - 1));
    for (int l = 0; l < levels_ - 1; ++l)
        arrays_.emplace_back(config.entriesPerLevel, config.ways);
}

int
Pwc::deepestCachedLevel(Addr vpn, std::uint32_t asid)
{
    ++stats_.lookups;
    for (int l = levels_ - 2; l >= 0; --l) {
        Addr dummy;
        if (arrays_[static_cast<std::size_t>(l)].lookup(prefixOf(vpn, l),
                                                        dummy, asid)) {
            ++stats_.hitsByLevel[static_cast<std::size_t>(l)];
            stats_.skippedFetches += static_cast<std::uint64_t>(l) + 1;
            return l;
        }
    }
    return -1;
}

void
Pwc::fill(Addr vpn, int level, std::uint32_t asid)
{
    CCSIM_ASSERT(level >= 0 && level < levels_ - 1,
                 "PWC caches upper levels only");
    arrays_[static_cast<std::size_t>(level)].insert(prefixOf(vpn, level),
                                                    0, asid);
}

void
Pwc::flush()
{
    for (auto &a : arrays_)
        a.flush();
}


void
Pwc::saveState(resilience::SnapshotWriter &w) const
{
    for (const TlbArray &a : arrays_)
        a.saveState(w);
    w.put(stats_);
}

void
Pwc::loadState(resilience::SnapshotReader &r)
{
    for (TlbArray &a : arrays_)
        a.loadState(r);
    r.get(stats_);
}

} // namespace ccsim::vm
