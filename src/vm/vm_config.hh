/**
 * @file
 * Configuration of the virtual-memory subsystem: TLB shapes, page
 * sizes, the page allocator (with optional aging), the page-walk
 * cache, and the multi-process layer (address spaces, context-switch
 * schedule, unmap/remap-driven TLB shootdowns).
 *
 * Everything here defaults to off/legacy: with `enable == false` no
 * MMU is built at all; with `enable == true` and the sub-features at
 * their defaults the simulator behaves bit-for-bit like the
 * single-address-space VM subsystem of PR 3.
 */

#ifndef CCSIM_VM_VM_CONFIG_HH
#define CCSIM_VM_VM_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "vm/page_alloc.hh"

namespace ccsim::vm {

/**
 * Multi-process layer: the system hosts `processes` address spaces;
 * each core runs one at a time and a deterministic, seed-derived
 * schedule switches it to another every quantum. Address spaces are
 * global (two cores may run the same one concurrently — genuinely
 * shared pages), which is what makes unmap/remap events inter-core:
 * remote TLBs may hold the dying translation and must be shot down.
 */
struct MultiProcessConfig {
    /** Address spaces in the system; <= 1 keeps the legacy
        one-immortal-space-per-core mode. */
    int processes = 0;

    /** Scheduling-slice length in retired instructions. Switch points
        are instruction-indexed (not cycle-indexed), so the schedule is
        trivially identical across simulation kernels. */
    std::uint64_t switchQuantum = 20000;

    /** Per-slice quantum jitter as a +/- fraction, drawn from the
        seed-derived schedule stream (0 = fixed quantum). */
    double quantumJitter = 0.25;

    /** Flush the TLBs (and PWC) on every context switch instead of
        relying on ASID tags — models pre-ASID hardware / the
        worst-case OS-pressure regime. */
    bool flushOnSwitch = false;

    /**
     * Unmap/remap cadence: every `remapPeriod` first-touches within an
     * address space, the oldest still-mapped page is reclaimed — its
     * frame is handed to the new page and its translation is shot down
     * on every other core. 0 disables remaps (and shootdowns).
     */
    std::uint64_t remapPeriod = 0;

    /** CPU cycles a remote core stalls (StallKind::Shootdown) while
        invalidating on a shootdown IPI. */
    CpuCycle shootdownCycles = 80;

    bool enabled() const { return processes > 1; }
};

/**
 * Page-walk cache: a small per-core cache of upper-level PTEs (all
 * levels but the leaf), consulted when a walk starts. A hit at level k
 * skips the DRAM/LLC fetches of levels 0..k — only uncached levels
 * issue reads, exactly like the partial-walk PWCs in real MMUs.
 */
struct PwcConfig {
    bool enable = false;
    int entriesPerLevel = 16; ///< Entries per upper walk level.
    int ways = 4;
};

struct VmConfig {
    bool enable = false; ///< Off: legacy physical-address mode.

    int pageBytes = 4096;             ///< Base page size.
    int hugePageBytes = 2 * 1024 * 1024; ///< HugePage policy page size.

    int l1Entries = 64; ///< L1 D-TLB entries.
    int l1Ways = 4;
    int l2Entries = 1024; ///< Unified L2 TLB entries.
    int l2Ways = 8;
    CpuCycle l2HitLatency = 8; ///< Extra cycles on an L1-miss/L2-hit.

    PageAlloc alloc = PageAlloc::Contiguous;
    std::uint64_t fragSeed = 1;  ///< Fragmented: shuffle seed.
    double fragDegree = 0.5;     ///< Fragmented: shuffle probability.

    /** Allocator aging: fragmentation degree ramps from `fragDegree`
        to `aging.maxDegree` over `aging.rampCycles` simulated CPU
        cycles (disabled by default — static allocators). */
    AgingSpec aging;

    /** Page-walk cache in front of the radix walker. */
    PwcConfig pwc;

    /** Multi-process address spaces, context switches, shootdowns. */
    MultiProcessConfig mp;

    /** Fraction of each region reserved for page-table frames. */
    double ptPoolFraction = 1.0 / 16;

    /** Page size the active allocator maps at. */
    int
    effectivePageBytes() const
    {
        return alloc == PageAlloc::HugePage ? hugePageBytes : pageBytes;
    }

    /** Radix depth: 2 MB pages stop one level early at the PD. */
    int
    walkLevels() const
    {
        return alloc == PageAlloc::HugePage ? 3 : 4;
    }
};

} // namespace ccsim::vm

#endif // CCSIM_VM_VM_CONFIG_HH
