#include "vm/tlb.hh"

#include "resilience/serial.hh"

#include "common/log.hh"

namespace ccsim::vm {

TlbArray::TlbArray(int entries, int ways) : ways_(ways)
{
    CCSIM_ASSERT(entries > 0 && ways > 0 && entries % ways == 0,
                 "bad TLB geometry");
    sets_ = entries / ways;
    CCSIM_ASSERT(isPow2(static_cast<std::uint64_t>(sets_)),
                 "TLB set count must be a power of two");
    entries_.resize(static_cast<std::size_t>(entries));
}

TlbArray::Entry *
TlbArray::setBase(Addr vpn)
{
    std::uint64_t set = vpn & (static_cast<std::uint64_t>(sets_) - 1);
    return &entries_[set * static_cast<std::size_t>(ways_)];
}

const TlbArray::Entry *
TlbArray::setBase(Addr vpn) const
{
    std::uint64_t set = vpn & (static_cast<std::uint64_t>(sets_) - 1);
    return &entries_[set * static_cast<std::size_t>(ways_)];
}

bool
TlbArray::lookup(Addr vpn, Addr &ppn, std::uint32_t asid)
{
    Entry *base = setBase(vpn);
    for (int w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].vpn == vpn && base[w].asid == asid) {
            base[w].lru = ++clock_;
            ppn = base[w].ppn;
            return true;
        }
    }
    return false;
}

void
TlbArray::insert(Addr vpn, Addr ppn, std::uint32_t asid)
{
    Entry *base = setBase(vpn);
    Entry *victim = &base[0];
    for (int w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].vpn == vpn && base[w].asid == asid) {
            victim = &base[w]; // Refresh in place.
            break;
        }
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->ppn = ppn;
    victim->asid = asid;
    victim->lru = ++clock_;
}

bool
TlbArray::probe(Addr vpn, std::uint32_t asid) const
{
    const Entry *base = setBase(vpn);
    for (int w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].vpn == vpn && base[w].asid == asid)
            return true;
    return false;
}

void
TlbArray::invalidate(Addr vpn, std::uint32_t asid)
{
    Entry *base = setBase(vpn);
    for (int w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].vpn == vpn && base[w].asid == asid)
            base[w].valid = false;
}

void
TlbArray::flushAsid(std::uint32_t asid)
{
    for (auto &e : entries_)
        if (e.asid == asid)
            e.valid = false;
}

void
TlbArray::flush()
{
    for (auto &e : entries_)
        e.valid = false;
}

int
TlbArray::validCount(std::int64_t asid) const
{
    int n = 0;
    for (const auto &e : entries_)
        if (e.valid && (asid < 0 || e.asid == static_cast<std::uint32_t>(asid)))
            ++n;
    return n;
}


void
TlbArray::saveState(resilience::SnapshotWriter &w) const
{
    w.put(clock_);
    w.put(static_cast<std::uint64_t>(entries_.size()));
    for (const Entry &e : entries_) {
        w.put(e.vpn);
        w.put(e.ppn);
        w.put(e.lru);
        w.put(e.asid);
        w.put(e.valid);
    }
}

void
TlbArray::loadState(resilience::SnapshotReader &r)
{
    r.get(clock_);
    std::uint64_t n = r.get<std::uint64_t>();
    if (n != entries_.size())
        throw resilience::SimError(
            resilience::ErrorKind::CorruptSnapshot,
            "TLB geometry mismatch in snapshot");
    for (Entry &e : entries_) {
        r.get(e.vpn);
        r.get(e.ppn);
        r.get(e.lru);
        r.get(e.asid);
        r.get(e.valid);
    }
}

} // namespace ccsim::vm
