#include "vm/page_table.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "resilience/serial.hh"

#include "common/log.hh"

namespace ccsim::vm {

PageTable::PageTable(int levels, Addr pool_base_line,
                     std::uint64_t pool_pages, int line_bytes)
    : levels_(levels), poolBaseLine_(pool_base_line),
      poolPages_(pool_pages)
{
    CCSIM_ASSERT(levels >= 1 && levels <= 4, "bad radix depth");
    CCSIM_ASSERT(pool_pages > 0, "empty page-table pool");
    CCSIM_ASSERT(line_bytes >= kPteBytes && line_bytes % kPteBytes == 0,
                 "line size must hold whole PTEs");
    linesPerTable_ = kTableBytes / line_bytes;
    pteShift_ = log2Exact(
        static_cast<std::uint64_t>(line_bytes / kPteBytes));
    CCSIM_ASSERT(pteShift_ >= 0, "PTEs per line must be a power of two");
}

Addr
PageTable::pteLineFor(Addr vpn, int level)
{
    CCSIM_ASSERT(level >= 0 && level < levels_, "walk level out of range");
    // The table consulted at `level` is identified by the vpn bits
    // above this level's 9-bit index; the root (level 0) has id 0 for
    // any vpn that fits the modeled address width.
    std::uint64_t table_id = vpn >> (kIndexBits * (levels_ - level));
    std::uint64_t entry =
        (vpn >> (kIndexBits * (levels_ - 1 - level))) & 511u;
    std::uint64_t key =
        (static_cast<std::uint64_t>(level) << 58) | table_id;
    auto [it, inserted] = tables_.try_emplace(key, nextFrame_);
    if (inserted)
        nextFrame_ = (nextFrame_ + 1) % poolPages_;
    std::uint64_t frame = it->second;
    return poolBaseLine_ +
           frame * static_cast<std::uint64_t>(linesPerTable_) +
           (entry >> pteShift_);
}


void
PageTable::saveState(resilience::SnapshotWriter &w) const
{
    w.put(nextFrame_);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(
        tables_.begin(), tables_.end());
    std::sort(sorted.begin(), sorted.end());
    w.putVec(sorted);
}

void
PageTable::loadState(resilience::SnapshotReader &r)
{
    r.get(nextFrame_);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted;
    r.getVec(sorted);
    tables_.clear();
    tables_.insert(sorted.begin(), sorted.end());
}

} // namespace ccsim::vm
