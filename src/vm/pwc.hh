/**
 * @file
 * Page-walk cache: a small per-core cache of upper-level PTEs that
 * lets the radix walker skip the fetches of levels it has seen
 * recently — only uncached levels issue LLC/DRAM reads.
 *
 * One set-associative LRU array per upper walk level (every level but
 * the leaf), tagged by (asid, table prefix): the level-k entry caches
 * the pointer to the level-(k+1) table for the vpn bits above level
 * k's 9-bit index — the split-PWC design of real x86 MMUs (and of the
 * translation stacks in Virtuoso/Sniper). A walk consults the PWC once
 * at start, from the deepest upper level up, and begins fetching at
 * the first uncached level; every upper-level PTE that does get
 * fetched is filled back in.
 *
 * The PWC is core-local state consulted at deterministic points of the
 * core's issue stream, so it needs no cross-kernel machinery: all
 * three kernels and the sharded runner see identical hit/miss
 * sequences by construction.
 */

#ifndef CCSIM_VM_PWC_HH
#define CCSIM_VM_PWC_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"
#include "vm/vm_config.hh"

namespace ccsim::resilience {
class SnapshotWriter;
class SnapshotReader;
} // namespace ccsim::resilience

namespace ccsim::vm {

class Pwc
{
  public:
    static constexpr int kMaxLevels = 4;

    /** @param levels radix depth of the walker this PWC fronts. */
    Pwc(const PwcConfig &config, int levels);

    /**
     * Deepest upper level whose entry for `vpn` is cached (walks may
     * then start at that level + 1), or -1 on a complete miss. Counts
     * one lookup and at most one per-level hit.
     */
    int deepestCachedLevel(Addr vpn, std::uint32_t asid);

    /** Fill the level-`level` entry covering `vpn` (upper levels only). */
    void fill(Addr vpn, int level, std::uint32_t asid);

    /** Drop everything (context switch without ASID tags). */
    void flush();

    struct Stats {
        std::uint64_t lookups = 0; ///< Walks that consulted the PWC.
        /** Hits by the level they were satisfied at (upper levels). */
        std::array<std::uint64_t, kMaxLevels> hitsByLevel{};
        std::uint64_t skippedFetches = 0; ///< PTE reads avoided.
    };

    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = Stats(); }

    int upperLevels() const { return levels_ - 1; }

    /** Checkpoint: every per-level array + counters. */
    void saveState(resilience::SnapshotWriter &w) const;
    void loadState(resilience::SnapshotReader &r);

  private:
    /** Tag for level `l`: the vpn bits above that level's index. */
    Addr
    prefixOf(Addr vpn, int level) const
    {
        return vpn >> (PageTable::kIndexBits * (levels_ - 1 - level));
    }

    int levels_;
    std::vector<TlbArray> arrays_; ///< One per upper level.
    Stats stats_;
};

} // namespace ccsim::vm

#endif // CCSIM_VM_PWC_HH
