/**
 * @file
 * Per-core memory-management unit: ASID-tagged two-level TLBs (a small
 * L1 D-TLB over a larger unified L2) and an optional page-walk cache
 * in front of a radix page-table walker, running over one or more
 * vm::AddressSpace objects — the vpn→frame maps that decide how much
 * of a workload's row-level temporal locality survives translation
 * (the quantity ChargeCache's benefit depends on).
 *
 * The Mmu is a passive state machine driven by cpu::Core, which owns
 * all timing: the core asks to translate, and on a full TLB miss pulls
 * PTE line addresses out of the walker one level at a time, issuing
 * each as a *real* read through the LLC and memory controllers (so
 * page-walk rows charge the HCRAC and interact with RLTL exactly like
 * data rows). One translation is in flight per core at a time, which
 * matches the core's in-order issue of its memory record stream.
 *
 * Multi-process mode (MultiProcessConfig::processes > 1): the Mmu
 * references every address space in the system and a seed-derived
 * schedule (contextSwitch / nextQuantum, driven by the core at
 * instruction-quantum boundaries) decides which one it is running.
 * TLB and PWC entries are ASID-tagged, so a switch needs no flush
 * unless flushOnSwitch asks for one. Remap events surfaced by an
 * address space (a page unmapped under memory pressure) are reported
 * through takePendingShootdown for the System to broadcast as an
 * inter-core TLB shootdown.
 *
 * With VmConfig::enable false (the default) no Mmu is built and cores
 * issue trace addresses as physical, byte-for-byte identical to the
 * pre-VM simulator; with multi-process/PWC/aging at their defaults the
 * Mmu is bit-identical to the single-space PR-3 subsystem.
 */

#ifndef CCSIM_VM_MMU_HH
#define CCSIM_VM_MMU_HH

#include <array>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "vm/address_space.hh"
#include "vm/page_alloc.hh"
#include "vm/page_table.hh"
#include "vm/pwc.hh"
#include "vm/tlb.hh"
#include "vm/vm_config.hh"

namespace ccsim::resilience {
class SnapshotWriter;
class SnapshotReader;
} // namespace ccsim::resilience

namespace ccsim::vm {

/** Counters the figures and the OS-pressure ablations consume. */
struct VmStats {
    std::uint64_t lookups = 0;  ///< Translations requested.
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;   ///< L1 misses that hit L2.
    std::uint64_t walks = 0;    ///< Full TLB misses (walks started).
    std::uint64_t pteFetches = 0;    ///< PTE reads injected.
    std::uint64_t walkCycleSum = 0;  ///< CPU cycles, begin→last PTE.
    std::uint64_t pagesMapped = 0;   ///< Data pages first-touched.
    std::uint64_t ptTables = 0;      ///< Table frames allocated (gauge).

    // Multi-process layer.
    std::uint64_t contextSwitches = 0; ///< Address-space switches taken.
    std::uint64_t remaps = 0;          ///< Unmap/remap events initiated.
    std::uint64_t shootdownsSent = 0;  ///< Shootdowns this core raised.
    std::uint64_t shootdownsReceived = 0; ///< Invalidation IPIs taken.

    // Page-walk cache.
    std::uint64_t pwcLookups = 0; ///< Walks that consulted the PWC.
    std::array<std::uint64_t, 4> pwcHitsByLevel{}; ///< By upper level.
    std::uint64_t pwcSkippedFetches = 0; ///< PTE reads avoided.

    double
    l1HitRate() const
    {
        return lookups ? double(l1Hits) / lookups : 0.0;
    }

    double
    missRate() const
    {
        return lookups ? double(walks) / lookups : 0.0;
    }

    double
    avgWalkCycles() const
    {
        return walks ? double(walkCycleSum) / walks : 0.0;
    }

    std::uint64_t
    pwcHits() const
    {
        std::uint64_t s = 0;
        for (std::uint64_t h : pwcHitsByLevel)
            s += h;
        return s;
    }

    VmStats &
    operator+=(const VmStats &o)
    {
        lookups += o.lookups;
        l1Hits += o.l1Hits;
        l2Hits += o.l2Hits;
        walks += o.walks;
        pteFetches += o.pteFetches;
        walkCycleSum += o.walkCycleSum;
        pagesMapped += o.pagesMapped;
        ptTables += o.ptTables;
        contextSwitches += o.contextSwitches;
        remaps += o.remaps;
        shootdownsSent += o.shootdownsSent;
        shootdownsReceived += o.shootdownsReceived;
        pwcLookups += o.pwcLookups;
        for (std::size_t i = 0; i < pwcHitsByLevel.size(); ++i)
            pwcHitsByLevel[i] += o.pwcHitsByLevel[i];
        pwcSkippedFetches += o.pwcSkippedFetches;
        return *this;
    }
};

class Mmu
{
  public:
    enum class Result {
        L1Hit, ///< translatedLine() is valid now.
        L2Hit, ///< Valid after l2HitLatency; call completeL2().
        Miss,  ///< Walk begun; fetch pteLine(), then pteReturned().
    };

    /**
     * Legacy single-space construction: the Mmu owns one AddressSpace
     * over this core's region.
     *
     * @param region_base_line first physical line of this core's
     *        region; data frames grow from here, page-table frames
     *        occupy the top ptPoolFraction of the region.
     * @param region_lines region size in cache lines.
     * @param schedule_seed seed for the (unused in this mode)
     *        context-switch schedule stream.
     */
    Mmu(const VmConfig &config, int core_id, Addr region_base_line,
        Addr region_lines, int line_bytes = 64,
        std::uint64_t schedule_seed = 0);

    /**
     * Multi-process construction: the Mmu references every address
     * space in the system (not owned) and starts on
     * spaces[core_id % spaces.size()].
     */
    Mmu(const VmConfig &config, int core_id,
        const std::vector<AddressSpace *> &spaces, int line_bytes = 64,
        std::uint64_t schedule_seed = 0);

    /** Start translating the byte address `vaddr` at cycle `now`. */
    Result beginTranslate(Addr vaddr, CpuCycle now);

    /** Physical line of the in-progress/completed translation. */
    Addr translatedLine() const { return translatedLine_; }

    /** L2Hit path: install into L1 and finalize the translation. */
    void completeL2();

    /** Walk path: physical line of the current level's PTE. */
    Addr pteLine() const { return pteLine_; }

    /** Walk path: level of the PTE currently being fetched. */
    int walkLevel() const { return walkLevel_; }

    /**
     * Walk path: the current PTE arrived at `now`. Advances the walk;
     * returns true when it finished (TLBs filled, translatedLine()
     * valid) and false when the next level's pteLine() needs fetching.
     */
    bool pteReturned(CpuCycle now);

    // ---- multi-process layer ----------------------------------------

    bool multiProcess() const { return spaces_.size() > 1; }

    /** Address space currently running on this core. */
    AddressSpace &currentSpace() { return *space_; }
    std::uint32_t currentAsid() const { return space_->asid(); }

    /**
     * Take the next scheduling decision: move to a different address
     * space (seed-derived pick), flushing TLBs/PWC when the config
     * models non-ASID hardware.
     */
    void contextSwitch();

    /** Next scheduling-slice length in instructions (seed-derived
        jitter around MultiProcessConfig::switchQuantum). */
    std::uint64_t nextQuantum();

    /**
     * A walk just remapped a page: (asid, victim vpn) of the
     * translation that must be shot down on every other core. Returns
     * false when nothing is pending. Clears the pending event.
     */
    bool takePendingShootdown(std::uint32_t &asid, Addr &vpn);

    /** Shootdown receive side: drop the translation from both TLBs. */
    void invalidateTranslation(std::uint32_t asid, Addr vpn);

    const VmConfig &config() const { return config_; }
    const VmStats &stats() const;
    void resetStats();

    /**
     * Checkpoint. In legacy single-space mode the Mmu owns its address
     * space and serializes it inline; in multi-process mode the spaces
     * are System-owned (serialized once there) and only the index of
     * the currently scheduled space is recorded.
     */
    void saveState(resilience::SnapshotWriter &w) const;
    void loadState(resilience::SnapshotReader &r);

    // Structure access for tests.
    TlbArray &l1Tlb() { return l1_; }
    TlbArray &l2Tlb() { return l2_; }
    Pwc *pwc() { return pwc_.get(); }
    const PageAllocator &allocator() const { return space_->allocator(); }
    const PageTable &pageTable() const { return space_->pageTable(); }
    Addr dataBaseLine() const { return space_->dataBaseLine(); }

  private:
    void finishTranslation(std::uint64_t ppn);
    void initCommon(int line_bytes);

    VmConfig config_;
    int coreId_;
    int lineShift_;   ///< log2(line_bytes).
    int pageShift_;   ///< log2(effectivePageBytes).
    Addr pageLines_;  ///< Lines per page.

    TlbArray l1_;
    TlbArray l2_;
    std::unique_ptr<Pwc> pwc_; ///< Null unless config.pwc.enable.

    std::unique_ptr<AddressSpace> owned_; ///< Legacy mode only.
    std::vector<AddressSpace *> spaces_;  ///< All spaces (size 1 legacy).
    AddressSpace *space_;                 ///< Currently scheduled.
    Rng schedRng_; ///< Context-switch schedule stream (seed-derived).

    // In-flight translation (one at a time, owned by the core's issue).
    Addr xlatVaddr_ = 0;
    Addr translatedLine_ = kNoAddr;
    int walkLevel_ = 0;
    Addr pteLine_ = kNoAddr;
    CpuCycle walkStart_ = 0;

    // Pending shootdown from the last completed walk's remap.
    bool shootdownPending_ = false;
    std::uint32_t shootdownAsid_ = 0;
    Addr shootdownVpn_ = 0;

    mutable VmStats stats_;
};

} // namespace ccsim::vm

#endif // CCSIM_VM_MMU_HH
