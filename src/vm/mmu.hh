/**
 * @file
 * Per-core memory-management unit: a two-level TLB (L1 D-TLB over a
 * larger unified L2) in front of a radix page-table walker, plus the
 * physical-page allocator that decides the virtual→physical mapping —
 * and therefore how much of a workload's row-level temporal locality
 * survives translation (the quantity ChargeCache's benefit depends on).
 *
 * The Mmu is a passive state machine driven by cpu::Core, which owns
 * all timing: the core asks to translate, and on a full TLB miss pulls
 * PTE line addresses out of the walker one level at a time, issuing
 * each as a *real* read through the LLC and memory controllers (so
 * page-walk rows charge the HCRAC and interact with RLTL exactly like
 * data rows). One translation is in flight per core at a time, which
 * matches the core's in-order issue of its memory record stream.
 *
 * With VmConfig::enable false (the default) no Mmu is built and cores
 * issue trace addresses as physical, byte-for-byte identical to the
 * pre-VM simulator.
 */

#ifndef CCSIM_VM_MMU_HH
#define CCSIM_VM_MMU_HH

#include <memory>
#include <unordered_map>

#include "common/types.hh"
#include "vm/page_alloc.hh"
#include "vm/page_table.hh"
#include "vm/tlb.hh"

namespace ccsim::vm {

struct VmConfig {
    bool enable = false; ///< Off: legacy physical-address mode.

    int pageBytes = 4096;             ///< Base page size.
    int hugePageBytes = 2 * 1024 * 1024; ///< HugePage policy page size.

    int l1Entries = 64; ///< L1 D-TLB entries.
    int l1Ways = 4;
    int l2Entries = 1024; ///< Unified L2 TLB entries.
    int l2Ways = 8;
    CpuCycle l2HitLatency = 8; ///< Extra cycles on an L1-miss/L2-hit.

    PageAlloc alloc = PageAlloc::Contiguous;
    std::uint64_t fragSeed = 1;  ///< Fragmented: shuffle seed.
    double fragDegree = 0.5;     ///< Fragmented: shuffle probability.

    /** Fraction of each core's region reserved for page-table frames. */
    double ptPoolFraction = 1.0 / 16;

    /** Page size the active allocator maps at. */
    int
    effectivePageBytes() const
    {
        return alloc == PageAlloc::HugePage ? hugePageBytes : pageBytes;
    }

    /** Radix depth: 2 MB pages stop one level early at the PD. */
    int
    walkLevels() const
    {
        return alloc == PageAlloc::HugePage ? 3 : 4;
    }
};

/** Counters the figures and the fragmentation ablation consume. */
struct VmStats {
    std::uint64_t lookups = 0;  ///< Translations requested.
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;   ///< L1 misses that hit L2.
    std::uint64_t walks = 0;    ///< Full TLB misses (walks started).
    std::uint64_t pteFetches = 0;    ///< PTE reads injected.
    std::uint64_t walkCycleSum = 0;  ///< CPU cycles, begin→last PTE.
    std::uint64_t pagesMapped = 0;   ///< Data pages first-touched.
    std::uint64_t ptTables = 0;      ///< Table frames allocated (gauge).

    double
    l1HitRate() const
    {
        return lookups ? double(l1Hits) / lookups : 0.0;
    }

    double
    missRate() const
    {
        return lookups ? double(walks) / lookups : 0.0;
    }

    double
    avgWalkCycles() const
    {
        return walks ? double(walkCycleSum) / walks : 0.0;
    }

    VmStats &
    operator+=(const VmStats &o)
    {
        lookups += o.lookups;
        l1Hits += o.l1Hits;
        l2Hits += o.l2Hits;
        walks += o.walks;
        pteFetches += o.pteFetches;
        walkCycleSum += o.walkCycleSum;
        pagesMapped += o.pagesMapped;
        ptTables += o.ptTables;
        return *this;
    }
};

class Mmu
{
  public:
    enum class Result {
        L1Hit, ///< translatedLine() is valid now.
        L2Hit, ///< Valid after l2HitLatency; call completeL2().
        Miss,  ///< Walk begun; fetch pteLine(), then pteReturned().
    };

    /**
     * @param region_base_line first physical line of this core's
     *        region; data frames grow from here, page-table frames
     *        occupy the top ptPoolFraction of the region.
     * @param region_lines region size in cache lines.
     */
    Mmu(const VmConfig &config, int core_id, Addr region_base_line,
        Addr region_lines, int line_bytes = 64);

    /** Start translating the byte address `vaddr` at cycle `now`. */
    Result beginTranslate(Addr vaddr, CpuCycle now);

    /** Physical line of the in-progress/completed translation. */
    Addr translatedLine() const { return translatedLine_; }

    /** L2Hit path: install into L1 and finalize the translation. */
    void completeL2();

    /** Walk path: physical line of the current level's PTE. */
    Addr pteLine() const { return pteLine_; }

    /**
     * Walk path: the current PTE arrived at `now`. Advances the walk;
     * returns true when it finished (TLBs filled, translatedLine()
     * valid) and false when the next level's pteLine() needs fetching.
     */
    bool pteReturned(CpuCycle now);

    const VmConfig &config() const { return config_; }
    const VmStats &stats() const;
    void resetStats() { stats_ = VmStats(); }

    // Structure access for tests.
    TlbArray &l1Tlb() { return l1_; }
    TlbArray &l2Tlb() { return l2_; }
    const PageAllocator &allocator() const { return alloc_; }
    const PageTable &pageTable() const { return pageTable_; }
    Addr dataBaseLine() const { return dataBaseLine_; }

  private:
    /** The region's split into data frames and the page-table pool
        (computed once; both pools derive from the same instance so
        they can never overlap). */
    struct RegionSplit {
        std::uint64_t ptPages;   ///< 4 KB table frames, top of region.
        Addr ptBaseLine;         ///< First line of the PT pool.
        std::uint64_t dataLines; ///< Lines below it, for data frames.
    };

    static RegionSplit splitRegion(const VmConfig &config,
                                   Addr region_base_line,
                                   Addr region_lines, int line_bytes);

    Mmu(const VmConfig &config, int core_id, Addr region_base_line,
        int line_bytes, const RegionSplit &split);

    Addr mapPage(Addr vpn);
    void finishTranslation(Addr ppn);

    VmConfig config_;
    int coreId_;
    int lineShift_;   ///< log2(line_bytes).
    int pageShift_;   ///< log2(effectivePageBytes).
    Addr pageLines_;  ///< Lines per page.
    Addr dataBaseLine_;
    std::uint64_t dataFrames_;

    TlbArray l1_;
    TlbArray l2_;
    PageAllocator alloc_;
    PageTable pageTable_;

    /** Authoritative page table contents: vpn -> pool-relative frame. */
    std::unordered_map<Addr, std::uint64_t> pageMap_;
    std::uint64_t touchCount_ = 0;

    // In-flight translation (one at a time, owned by the core's issue).
    Addr xlatVaddr_ = 0;
    Addr translatedLine_ = kNoAddr;
    int walkLevel_ = 0;
    Addr pteLine_ = kNoAddr;
    CpuCycle walkStart_ = 0;

    mutable VmStats stats_;
};

} // namespace ccsim::vm

#endif // CCSIM_VM_MMU_HH
