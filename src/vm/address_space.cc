#include "vm/address_space.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "resilience/serial.hh"

#include <algorithm>

#include "common/log.hh"

namespace ccsim::vm {

AddressSpace::RegionSplit
AddressSpace::splitRegion(const VmConfig &config, Addr region_base_line,
                          Addr region_lines, int line_bytes)
{
    std::uint64_t region_bytes =
        region_lines * static_cast<std::uint64_t>(line_bytes);
    auto pages = static_cast<std::uint64_t>(
        double(region_bytes / PageTable::kTableBytes) *
        config.ptPoolFraction);
    RegionSplit s;
    s.ptPages = pages ? pages : 1;
    std::uint64_t pt_lines =
        s.ptPages * (PageTable::kTableBytes / line_bytes);
    s.ptBaseLine = region_base_line + region_lines - pt_lines;
    s.dataLines = region_lines - pt_lines;
    return s;
}

AddressSpace::AddressSpace(const VmConfig &config, int asid,
                           Addr region_base_line, Addr region_lines,
                           int line_bytes)
    : AddressSpace(config, asid, region_base_line, line_bytes,
                   splitRegion(config, region_base_line, region_lines,
                               line_bytes))
{}

AddressSpace::AddressSpace(const VmConfig &config, int asid,
                           Addr region_base_line, int line_bytes,
                           const RegionSplit &split)
    : asid_(static_cast<std::uint32_t>(asid)),
      remapPeriod_(config.mp.enabled() ? config.mp.remapPeriod : 0),
      dataBaseLine_(region_base_line),
      dataFrames_(split.dataLines /
                  (static_cast<Addr>(config.effectivePageBytes()) /
                   line_bytes)),
      alloc_(config.alloc, dataFrames_ ? dataFrames_ : 1, config.fragSeed,
             config.fragDegree, asid, config.aging),
      pageTable_(config.walkLevels(), split.ptBaseLine, split.ptPages,
                 line_bytes)
{
    CCSIM_ASSERT(dataFrames_ > 0, "region too small for a data frame");
}

AddressSpace::MapOutcome
AddressSpace::mapPage(Addr vpn, CpuCycle now)
{
    MapOutcome out;
    auto it = pageMap_.find(vpn);
    if (it != pageMap_.end()) {
        out.ppn = it->second;
        return out;
    }
    out.firstTouch = true;
    // Remap schedule: reclaim the oldest mapping's frame for this page
    // (an OS recycling a cold page under memory pressure); the victim
    // translation must be shot down everywhere it may be cached.
    if (remapPeriod_ > 0 && !mapOrder_.empty() &&
        ++touchesSinceRemap_ >= remapPeriod_) {
        touchesSinceRemap_ = 0;
        Addr victim = mapOrder_.front();
        mapOrder_.pop_front();
        auto vit = pageMap_.find(victim);
        CCSIM_ASSERT(vit != pageMap_.end(), "remap victim not mapped");
        std::uint64_t frame = vit->second;
        pageMap_.erase(vit);
        pageMap_.emplace(vpn, frame);
        mapOrder_.push_back(vpn);
        ++remaps_;
        out.ppn = frame;
        out.remapped = true;
        out.victimVpn = victim;
        return out;
    }
    std::uint64_t frame = alloc_.frameForAt(touchCount_++, now);
    pageMap_.emplace(vpn, frame);
    if (remapPeriod_ > 0)
        mapOrder_.push_back(vpn);
    out.ppn = frame;
    return out;
}

bool
AddressSpace::lookup(Addr vpn, std::uint64_t &ppn) const
{
    auto it = pageMap_.find(vpn);
    if (it == pageMap_.end())
        return false;
    ppn = it->second;
    return true;
}


void
AddressSpace::saveState(resilience::SnapshotWriter &w) const
{
    alloc_.saveState(w);
    pageTable_.saveState(w);
    std::vector<std::pair<Addr, std::uint64_t>> sorted(pageMap_.begin(),
                                                       pageMap_.end());
    std::sort(sorted.begin(), sorted.end());
    w.putVec(sorted);
    w.putDeque(mapOrder_);
    w.put(touchCount_);
    w.put(touchesSinceRemap_);
    w.put(remaps_);
}

void
AddressSpace::loadState(resilience::SnapshotReader &r)
{
    alloc_.loadState(r);
    pageTable_.loadState(r);
    std::vector<std::pair<Addr, std::uint64_t>> sorted;
    r.getVec(sorted);
    pageMap_.clear();
    pageMap_.insert(sorted.begin(), sorted.end());
    r.getDeque(mapOrder_);
    r.get(touchCount_);
    r.get(touchesSinceRemap_);
    r.get(remaps_);
}

} // namespace ccsim::vm
