/**
 * @file
 * Set-associative LRU translation lookaside buffer.
 *
 * One TlbArray models one TLB level; vm::Mmu stacks a small L1 D-TLB
 * over a larger unified L2 (the instruction side is not modeled — the
 * cores are trace-driven and fetch no instructions from memory). Shapes
 * follow the Virtuoso/Sniper translation stack: entries tagged by
 * virtual page number, full-LRU within a set, no prefetching.
 */

#ifndef CCSIM_VM_TLB_HH
#define CCSIM_VM_TLB_HH

#include <vector>

#include "common/types.hh"

namespace ccsim::vm {

class TlbArray
{
  public:
    /** `entries` total, `ways`-associative; sets must be a power of 2. */
    TlbArray(int entries, int ways);

    /** Look up `vpn`; on a hit, touch LRU and write the frame number. */
    bool lookup(Addr vpn, Addr &ppn);

    /** Install (or refresh) a translation, evicting the set's LRU. */
    void insert(Addr vpn, Addr ppn);

    /** Drop every entry (not used on the hot path; tests/ablation). */
    void flush();

    int numSets() const { return sets_; }
    int numWays() const { return ways_; }

  private:
    struct Entry {
        Addr vpn = 0;
        Addr ppn = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    Entry *setBase(Addr vpn);

    int sets_;
    int ways_;
    std::uint64_t clock_ = 0;
    std::vector<Entry> entries_; ///< sets_ * ways_, set-major.
};

} // namespace ccsim::vm

#endif // CCSIM_VM_TLB_HH
