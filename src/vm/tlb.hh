/**
 * @file
 * Set-associative LRU translation lookaside buffer with ASID tags.
 *
 * One TlbArray models one TLB level; vm::Mmu stacks a small L1 D-TLB
 * over a larger unified L2 (the instruction side is not modeled — the
 * cores are trace-driven and fetch no instructions from memory). Shapes
 * follow the Virtuoso/Sniper translation stack: entries tagged by
 * virtual page number plus address-space id, full-LRU within a set, no
 * prefetching. Single-address-space callers may omit the asid (it
 * defaults to 0), which reproduces the untagged pre-multiprocess TLB
 * bit for bit.
 */

#ifndef CCSIM_VM_TLB_HH
#define CCSIM_VM_TLB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ccsim::resilience {
class SnapshotWriter;
class SnapshotReader;
} // namespace ccsim::resilience

namespace ccsim::vm {

class TlbArray
{
  public:
    /** `entries` total, `ways`-associative; sets must be a power of 2. */
    TlbArray(int entries, int ways);

    /** Look up `vpn` in `asid`; on a hit, touch LRU and write the frame
        number. Never matches an entry installed under another asid. */
    bool lookup(Addr vpn, Addr &ppn, std::uint32_t asid = 0);

    /** Install (or refresh) a translation, evicting the set's LRU. */
    void insert(Addr vpn, Addr ppn, std::uint32_t asid = 0);

    /** Presence probe without an LRU touch (tests, shootdown audits). */
    bool probe(Addr vpn, std::uint32_t asid = 0) const;

    /** Drop one translation if present (TLB shootdown receive side). */
    void invalidate(Addr vpn, std::uint32_t asid);

    /** Drop every entry of one address space (non-global retag). */
    void flushAsid(std::uint32_t asid);

    /** Drop every entry (context switch without ASID tags). */
    void flush();

    /** Valid entries currently held (for `asid` only when >= 0). */
    int validCount(std::int64_t asid = -1) const;

    int numSets() const { return sets_; }
    int numWays() const { return ways_; }

    /** Checkpoint: LRU clock + every entry. */
    void saveState(resilience::SnapshotWriter &w) const;
    void loadState(resilience::SnapshotReader &r);

  private:
    struct Entry {
        Addr vpn = 0;
        Addr ppn = 0;
        std::uint64_t lru = 0;
        std::uint32_t asid = 0;
        bool valid = false;
    };

    Entry *setBase(Addr vpn);
    const Entry *setBase(Addr vpn) const;

    int sets_;
    int ways_;
    std::uint64_t clock_ = 0;
    std::vector<Entry> entries_; ///< sets_ * ways_, set-major.
};

} // namespace ccsim::vm

#endif // CCSIM_VM_TLB_HH
