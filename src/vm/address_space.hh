/**
 * @file
 * One address space (process image): the authoritative vpn→frame map,
 * its radix page table, and its slice of physical memory.
 *
 * In legacy single-process mode each core's Mmu owns exactly one
 * AddressSpace over the core's region — constructed with the same
 * region-split math the pre-multiprocess Mmu used, so translation
 * behavior is bit-identical. In multi-process mode
 * (MultiProcessConfig::processes > 1) the System owns one AddressSpace
 * per process, each over `capacity / processes` lines, and every
 * core's Mmu references all of them; the context-switch schedule picks
 * which one a core is running. Two cores may run the same space
 * concurrently — its pages are then genuinely shared, which is what
 * gives TLB shootdowns an inter-core victim set.
 *
 * First-touch allocation order (and therefore the physical layout) is
 * a pure function of the sequence of mapPage calls, which the
 * bit-identical-schedule invariant makes identical across all
 * simulation kernels and the sharded runner (cores always advance on
 * one thread, in id order).
 *
 * Unmap/remap (MultiProcessConfig::remapPeriod): every remapPeriod-th
 * first-touch reclaims the oldest still-mapped page — the new page
 * takes its frame and the victim translation must be invalidated in
 * every TLB that may hold it. The caller (Mmu → Core → System)
 * broadcasts the shootdown; this class only reports the victim.
 */

#ifndef CCSIM_VM_ADDRESS_SPACE_HH
#define CCSIM_VM_ADDRESS_SPACE_HH

#include <deque>
#include <unordered_map>

#include "common/types.hh"
#include "vm/page_table.hh"
#include "vm/vm_config.hh"

namespace ccsim::resilience {
class SnapshotWriter;
class SnapshotReader;
} // namespace ccsim::resilience

namespace ccsim::vm {

class AddressSpace
{
  public:
    /**
     * @param asid address-space id: the TLB tag, and the shuffle-seed
     *        mix the legacy mode fed the core id into.
     * @param region_base_line first physical line of this space's
     *        region; data frames grow from here, page-table frames
     *        occupy the top ptPoolFraction of the region.
     * @param region_lines region size in cache lines.
     */
    AddressSpace(const VmConfig &config, int asid, Addr region_base_line,
                 Addr region_lines, int line_bytes = 64);

    /** Result of a page touch (see mapPage). */
    struct MapOutcome {
        std::uint64_t ppn = 0; ///< Pool-relative frame of `vpn`.
        bool firstTouch = false; ///< A new mapping was created.
        bool remapped = false;   ///< A victim page was unmapped.
        Addr victimVpn = 0;      ///< Valid when remapped.
    };

    /**
     * Touch `vpn` at CPU cycle `now`: return its frame, creating the
     * mapping on first touch (allocator aging samples `now`), possibly
     * reclaiming a victim page per the remap schedule.
     */
    MapOutcome mapPage(Addr vpn, CpuCycle now);

    /** Lookup without touching; false when `vpn` is unmapped. */
    bool lookup(Addr vpn, std::uint64_t &ppn) const;

    PageTable &pageTable() { return pageTable_; }
    const PageTable &pageTable() const { return pageTable_; }
    const PageAllocator &allocator() const { return alloc_; }

    std::uint32_t asid() const { return asid_; }
    Addr dataBaseLine() const { return dataBaseLine_; }
    std::uint64_t dataFrames() const { return dataFrames_; }
    std::uint64_t mappedPages() const { return pageMap_.size(); }
    std::uint64_t remaps() const { return remaps_; }

    /** Checkpoint: allocator, page table, the vpn→frame map (key-sorted)
        and the remap-age bookkeeping. */
    void saveState(resilience::SnapshotWriter &w) const;
    void loadState(resilience::SnapshotReader &r);

  private:
    /** The region's split into data frames and the page-table pool
        (computed once; both pools derive from the same instance so
        they can never overlap). Identical math to the pre-multiprocess
        Mmu::splitRegion. */
    struct RegionSplit {
        std::uint64_t ptPages;   ///< 4 KB table frames, top of region.
        Addr ptBaseLine;         ///< First line of the PT pool.
        std::uint64_t dataLines; ///< Lines below it, for data frames.
    };

    static RegionSplit splitRegion(const VmConfig &config,
                                   Addr region_base_line,
                                   Addr region_lines, int line_bytes);

    AddressSpace(const VmConfig &config, int asid, Addr region_base_line,
                 int line_bytes, const RegionSplit &split);

    std::uint32_t asid_;
    std::uint64_t remapPeriod_;
    Addr dataBaseLine_;
    std::uint64_t dataFrames_;

    PageAllocator alloc_;
    PageTable pageTable_;

    /** Authoritative page table contents: vpn -> pool-relative frame. */
    std::unordered_map<Addr, std::uint64_t> pageMap_;
    /** Mapping age order (oldest first); maintained only when the
        remap schedule is active. */
    std::deque<Addr> mapOrder_;
    std::uint64_t touchCount_ = 0;
    std::uint64_t touchesSinceRemap_ = 0;
    std::uint64_t remaps_ = 0;
};

} // namespace ccsim::vm

#endif // CCSIM_VM_ADDRESS_SPACE_HH
