#include "vm/page_alloc.hh"

#include <array>

#include "resilience/serial.hh"

#include <algorithm>

#include "common/log.hh"

namespace ccsim::vm {

const char *
pageAllocName(PageAlloc policy)
{
    switch (policy) {
      case PageAlloc::Contiguous:
        return "Contiguous";
      case PageAlloc::Fragmented:
        return "Fragmented";
      case PageAlloc::HugePage:
        return "HugePage";
    }
    return "?";
}

PageAllocator::PageAllocator(PageAlloc policy, std::uint64_t pool_frames,
                             std::uint64_t frag_seed, double frag_degree,
                             int core_id, AgingSpec aging)
    : policy_(policy),
      poolFrames_(pool_frames),
      baseDegree_(frag_degree),
      aging_(aging),
      rng_(mix64(frag_seed ^ (0xF4A6ull + std::uint64_t(core_id) *
                                              0x9E3779B97F4A7C15ull)))
{
    CCSIM_ASSERT(pool_frames > 0, "empty physical frame pool");
    CCSIM_ASSERT(pool_frames <= (1ull << 32),
                 "frame pool exceeds 32-bit order indices");
    if (aging_.enabled()) {
        CCSIM_ASSERT(frag_degree >= 0.0 && frag_degree <= 1.0 &&
                         aging_.maxDegree <= 1.0,
                     "fragmentation degrees are in [0,1]");
        // Lazy mode: identity order now; each position's swap decision
        // is made at first hand-out (frameForAt) under the degree then
        // in force.
        order_.resize(pool_frames);
        for (std::uint64_t i = 0; i < pool_frames; ++i)
            order_[i] = static_cast<std::uint32_t>(i);
        return;
    }
    if (policy != PageAlloc::Fragmented || frag_degree <= 0.0)
        return;
    CCSIM_ASSERT(frag_degree <= 1.0, "fragmentation degree is in [0,1]");
    order_.resize(pool_frames);
    for (std::uint64_t i = 0; i < pool_frames; ++i)
        order_[i] = static_cast<std::uint32_t>(i);
    // Partial Fisher-Yates: each position participates in a swap with
    // probability `frag_degree`, so the expected displacement — and the
    // destruction of row adjacency — grows monotonically with it.
    Rng rng(mix64(frag_seed ^ (0xF4A6ull + std::uint64_t(core_id) * 0x9E3779B97F4A7C15ull)));
    for (std::uint64_t i = 0; i + 1 < pool_frames; ++i) {
        if (!rng.chance(frag_degree))
            continue;
        std::uint64_t j = i + rng.below(pool_frames - i);
        std::swap(order_[i], order_[j]);
    }
}

double
PageAllocator::degreeAt(CpuCycle now) const
{
    if (!aging_.enabled())
        return baseDegree_;
    double frac = std::min(1.0, double(now) / double(aging_.rampCycles));
    return baseDegree_ + (aging_.maxDegree - baseDegree_) * frac;
}

std::uint64_t
PageAllocator::frameForAt(std::uint64_t touch_idx, CpuCycle now)
{
    if (!aging_.enabled())
        return frameFor(touch_idx);
    std::uint64_t slot = touch_idx % poolFrames_;
    // Touch order is sequential, so on the first pass slot == touch_idx
    // and each position's shuffle decision is made exactly once, under
    // the fragmentation degree in force at its allocation time.
    if (touch_idx < poolFrames_ && slot + 1 < poolFrames_ &&
        rng_.chance(degreeAt(now))) {
        std::uint64_t j = slot + rng_.below(poolFrames_ - slot);
        std::swap(order_[slot], order_[j]);
    }
    return order_[slot];
}


void
PageAllocator::saveState(resilience::SnapshotWriter &w) const
{
    w.put(rng_.state());
    w.putVec(order_);
}

void
PageAllocator::loadState(resilience::SnapshotReader &r)
{
    rng_.setState(r.get<std::array<std::uint64_t, 4>>());
    r.getVec(order_);
}

} // namespace ccsim::vm
