#include "vm/page_alloc.hh"

#include "common/log.hh"
#include "common/random.hh"

namespace ccsim::vm {

const char *
pageAllocName(PageAlloc policy)
{
    switch (policy) {
      case PageAlloc::Contiguous:
        return "Contiguous";
      case PageAlloc::Fragmented:
        return "Fragmented";
      case PageAlloc::HugePage:
        return "HugePage";
    }
    return "?";
}

PageAllocator::PageAllocator(PageAlloc policy, std::uint64_t pool_frames,
                             std::uint64_t frag_seed, double frag_degree,
                             int core_id)
    : policy_(policy), poolFrames_(pool_frames)
{
    CCSIM_ASSERT(pool_frames > 0, "empty physical frame pool");
    CCSIM_ASSERT(pool_frames <= (1ull << 32),
                 "frame pool exceeds 32-bit order indices");
    if (policy != PageAlloc::Fragmented || frag_degree <= 0.0)
        return;
    CCSIM_ASSERT(frag_degree <= 1.0, "fragmentation degree is in [0,1]");
    order_.resize(pool_frames);
    for (std::uint64_t i = 0; i < pool_frames; ++i)
        order_[i] = static_cast<std::uint32_t>(i);
    // Partial Fisher-Yates: each position participates in a swap with
    // probability `frag_degree`, so the expected displacement — and the
    // destruction of row adjacency — grows monotonically with it.
    Rng rng(mix64(frag_seed ^ (0xF4A6ull + std::uint64_t(core_id) * 0x9E3779B97F4A7C15ull)));
    for (std::uint64_t i = 0; i + 1 < pool_frames; ++i) {
        if (!rng.chance(frag_degree))
            continue;
        std::uint64_t j = i + rng.below(pool_frames - i);
        std::swap(order_[i], order_[j]);
    }
}

} // namespace ccsim::vm
