/**
 * @file
 * Eight-core contention study: runs one multiprogrammed mix (Table 1's
 * eight-core system: 2 channels, closed-row policy) under all five
 * latency schemes and reports weighted speedup — demonstrating the
 * paper's key system-level result that bank conflicts in multi-core
 * systems amplify RLTL and hence ChargeCache's benefit.
 *
 * Usage: multicore_contention [mixId=1]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/experiment.hh"
#include "workloads/profiles.hh"

int
main(int argc, char **argv)
{
    using namespace ccsim;

    int mix_id = argc > 1 ? std::atoi(argv[1]) : 1;
    auto mix = workloads::mixWorkloads(mix_id);

    printf("Eight-core mix w%d:", mix_id);
    for (const auto &w : mix)
        printf(" %s", w.c_str());
    printf("\n\n");

    const sim::Scheme schemes[] = {
        sim::Scheme::Baseline, sim::Scheme::Nuat,
        sim::Scheme::ChargeCache, sim::Scheme::ChargeCacheNuat,
        sim::Scheme::LlDram};

    double base_ws = 0.0;
    printf("%-18s %10s %9s %8s %9s\n", "scheme", "wspeedup", "vs base",
           "hitrate", "RMPKC");
    for (sim::Scheme s : schemes) {
        sim::SystemResult r = sim::runMix(mix_id, s);
        double ws = sim::weightedSpeedup(mix, r.ipc);
        if (s == sim::Scheme::Baseline)
            base_ws = ws;
        printf("%-18s %10.4f %+8.2f%% %7.1f%% %9.2f\n",
               sim::schemeName(s), ws, 100.0 * (ws / base_ws - 1.0),
               100.0 * r.providerHitRate, r.rmpkc);
    }
    return 0;
}
