/**
 * @file
 * RLTL profiler: measure the Row-Level Temporal Locality of any
 * workload — a named synthetic profile or a Ramulator-format trace file
 * — and predict how much ChargeCache would help it, before running any
 * scheme comparison. This is the analysis a memory-system architect
 * would run on their own traces to decide whether the mechanism is
 * worth adopting (the paper's Section 3 methodology, as a tool).
 *
 * Usage:
 *   rltl_profiler <workload-name>
 *   rltl_profiler --trace <ramulator-trace-file>
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "sim/experiment.hh"
#include "workloads/profiles.hh"
#include "workloads/trace_file.hh"

int
main(int argc, char **argv)
{
    using namespace ccsim;

    std::string workload = "omnetpp";
    std::string trace_path;
    if (argc >= 3 && !std::strcmp(argv[1], "--trace"))
        trace_path = argv[2];
    else if (argc >= 2)
        workload = argv[1];

    const std::vector<double> windows = {0.125, 0.25, 0.5, 1.0, 8.0};
    auto tweak = [&](sim::SimConfig &cfg) {
        cfg.ctrl.trackRltl = true;
        cfg.ctrl.rltlWindowsMs = windows;
        cfg.cc.trackUnlimited = true;
    };

    sim::SystemResult r;
    if (!trace_path.empty()) {
        printf("Profiling trace file '%s'\n\n", trace_path.c_str());
        sim::SimConfig cfg =
            sim::makeSingleConfig(sim::Scheme::ChargeCache,
                                  sim::expScale());
        tweak(cfg);
        workloads::RamulatorTraceReader reader(trace_path);
        std::vector<cpu::TraceSource *> traces = {&reader};
        sim::System system(cfg, traces);
        r = system.run();
    } else {
        printf("Profiling synthetic workload '%s'\n\n", workload.c_str());
        r = sim::runSingle(workload, sim::Scheme::ChargeCache, tweak);
    }

    printf("activations:            %llu (RMPKC %.2f)\n",
           (unsigned long long)r.activations, r.rmpkc);
    printf("row buffer behaviour:   %llu hits / %llu misses / %llu "
           "conflicts\n",
           (unsigned long long)r.ctrl.rowHits,
           (unsigned long long)r.ctrl.rowMisses,
           (unsigned long long)r.ctrl.rowConflicts);

    printf("\nRLTL (fraction of ACTs within t of the row's last PRE):\n");
    for (size_t i = 0; i < windows.size(); ++i)
        printf("  %7.3f ms : %5.1f%%\n", windows[i], 100 * r.rltl[i]);

    printf("\nChargeCache predictors:\n");
    printf("  128-entry HCRAC hit rate:   %5.1f%%\n",
           100 * r.hcracHitRate);
    printf("  unlimited-capacity bound:   %5.1f%%\n",
           100 * r.unlimitedHitRate);

    double capture = r.unlimitedHitRate > 0
                         ? r.hcracHitRate / r.unlimitedHitRate
                         : 0.0;
    printf("\nverdict: ");
    if (r.rmpkc < 0.5) {
        printf("not memory-bound; ChargeCache is performance-neutral "
               "here.\n");
    } else if (capture > 0.6) {
        printf("high RLTL within a small table's reach — a strong "
               "ChargeCache candidate.\n");
    } else if (r.unlimitedHitRate > 0.5) {
        printf("high RLTL but long row-reuse distance (mcf/omnetpp "
               "class): consider a larger table or thrash-resistant "
               "insertion (see abl_insertion_policy).\n");
    } else {
        printf("little row re-activation locality; expect limited "
               "benefit.\n");
    }
    return 0;
}
