/**
 * @file
 * Quickstart: run one workload on the baseline DDR3-1600 system and on
 * ChargeCache, and print the headline metrics — the 30-second tour of
 * the library's public API.
 *
 * Usage: quickstart [workload] [insts=N]
 */

#include <cstdio>
#include <string>

#include "sim/experiment.hh"
#include "workloads/profiles.hh"

int
main(int argc, char **argv)
{
    using namespace ccsim;

    std::string workload = argc > 1 ? argv[1] : "tpch6";

    printf("ChargeCache quickstart — workload '%s'\n", workload.c_str());
    printf("(scale via CCSIM_INSTS / CCSIM_WARMUP environment vars)\n\n");

    sim::SystemResult base =
        sim::runSingle(workload, sim::Scheme::Baseline);
    sim::SystemResult cc =
        sim::runSingle(workload, sim::Scheme::ChargeCache);

    double speedup = cc.ipc[0] / base.ipc[0] - 1.0;

    printf("%-28s %12s %12s\n", "metric", "baseline", "chargecache");
    printf("%-28s %12.4f %12.4f\n", "IPC", base.ipc[0], cc.ipc[0]);
    printf("%-28s %12.2f %12.2f\n", "RMPKC (ACTs/kcycle)",
           base.rmpkc, cc.rmpkc);
    printf("%-28s %12llu %12llu\n", "row activations",
           (unsigned long long)base.activations,
           (unsigned long long)cc.activations);
    printf("%-28s %12s %12.1f%%\n", "HCRAC hit rate", "-",
           100.0 * cc.hcracHitRate);
    printf("%-28s %12s %12.1f%%\n", "ACTs at reduced timing", "-",
           100.0 * cc.providerHitRate);
    printf("%-28s %12.3f %12.3f\n", "DRAM energy (mJ)",
           base.energy.totalNj() * 1e-6, cc.energy.totalNj() * 1e-6);
    printf("\nChargeCache speedup: %+.2f%%\n", 100.0 * speedup);
    return 0;
}
