/**
 * @file
 * Kill-and-resume harness for the checkpoint subsystem
 * (docs/resilience.md). Runs a deterministic two-channel ChargeCache
 * simulation with periodic autosave; a later invocation with
 * CCSIM_RESUME=1 restores the newest snapshot and finishes the run.
 * The final stats JSON is written atomically and printed with full
 * precision, so CI can SIGKILL the first run mid-flight, resume, and
 * assert the result is byte-identical to an uninterrupted run.
 *
 * Environment:
 *   CCSIM_SNAPSHOT       snapshot path (default ccsim_resume.snap)
 *   CCSIM_RESULT         result JSON path (default RESUME_result.json)
 *   CCSIM_CKPT_INTERVAL  autosave period, CPU cycles (default 200000)
 *   CCSIM_RESUME         1 = restore CCSIM_SNAPSHOT before running
 *   CCSIM_RESUME_KERNEL  percycle | eventskip | calendar (default)
 *   CCSIM_RESUME_SHARDS  shardThreads for the run (default 0 = serial)
 *   CCSIM_INSTS          instructions/core after warm-up (default 60000)
 *   CCSIM_SLOWDOWN_US    optional per-autosave sleep, microseconds —
 *                        stretches wall-clock so a CI kill lands
 *                        mid-run without inflating the simulation
 *
 * Exit codes: 0 run complete, 2 usage/config error, 3 interrupted by
 * SIGINT/SIGTERM (a final snapshot was saved first).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "resilience/checkpoint.hh"
#include "resilience/error.hh"
#include "resilience/io.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workloads/profiles.hh"

using namespace ccsim;

namespace {

std::string
envStr(const char *name, const char *def)
{
    const char *v = std::getenv(name);
    return v && *v ? v : def;
}

sim::KernelMode
parseKernel(const std::string &name)
{
    if (name == "percycle")
        return sim::KernelMode::PerCycle;
    if (name == "eventskip")
        return sim::KernelMode::EventSkip;
    if (name == "calendar")
        return sim::KernelMode::Calendar;
    throw resilience::SimError(resilience::ErrorKind::InvalidConfig,
                               "CCSIM_RESUME_KERNEL '" + name +
                                   "' is not a kernel name");
}

void
writeResult(const std::string &path, const sim::SystemResult &res)
{
    std::string json = "{\"bench\": \"checkpoint_resume\"";
    char buf[64];
    auto num = [&](const char *key, double v) {
        std::snprintf(buf, sizeof(buf), ", \"%s\": %.17g", key, v);
        json += buf;
    };
    auto u64 = [&](const char *key, std::uint64_t v) {
        std::snprintf(buf, sizeof(buf), ", \"%s\": %llu", key,
                      (unsigned long long)v);
        json += buf;
    };
    u64("cpu_cycles", res.cpuCycles);
    json += ", \"ipc\": [";
    for (std::size_t i = 0; i < res.ipc.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s%.17g", i ? ", " : "",
                      res.ipc[i]);
        json += buf;
    }
    json += "]";
    u64("activations", res.activations);
    num("provider_hit_rate", res.providerHitRate);
    num("hcrac_hit_rate", res.hcracHitRate);
    num("rmpkc", res.rmpkc);
    u64("llc_misses", res.llc.misses);
    u64("reads", res.ctrl.reads);
    u64("writes", res.ctrl.writes);
    u64("read_latency_sum", res.ctrl.readLatencySum);
    num("energy_total_nj", res.energy.totalNj());
    json += std::string(", \"degraded\": ") +
            (res.degraded ? "true" : "false") + "}\n";
    resilience::atomicWriteFile(path, json);
    std::fputs(json.c_str(), stdout);
}

} // namespace

int
main()
{
    const std::string snap_path =
        envStr("CCSIM_SNAPSHOT", "ccsim_resume.snap");
    const std::string result_path =
        envStr("CCSIM_RESULT", "RESUME_result.json");
    const CpuCycle interval = sim::envU64("CCSIM_CKPT_INTERVAL", 200000);
    const bool resume = sim::envU64("CCSIM_RESUME", 0) != 0;
    const std::uint64_t slow_us = sim::envU64("CCSIM_SLOWDOWN_US", 0);

    try {
        sim::SimConfig cfg = sim::SimConfig::eightCore();
        cfg.nCores = 2;
        cfg.scheme = sim::Scheme::ChargeCache;
        cfg.targetInsts = sim::envU64("CCSIM_INSTS", 60000);
        cfg.warmupInsts = cfg.targetInsts / 8;
        cfg.kernel = parseKernel(envStr("CCSIM_RESUME_KERNEL", "calendar"));
        cfg.shardThreads =
            static_cast<int>(sim::envU64("CCSIM_RESUME_SHARDS", 0));
        cfg.finalizeChargeCache();

        const std::vector<std::string> workloads{"mcf", "libquantum"};
        sim::System system(cfg, workloads);

        resilience::installStopSignalHandler();
        system.setCheckpointHook(
            interval, interval, [&](sim::System &sys) {
                resilience::atomicWriteFile(snap_path,
                                            sys.serializeSnapshot());
                if (slow_us)
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(slow_us));
                return !resilience::stopRequested();
            });

        if (resume) {
            system.restoreSnapshot(resilience::readFileBytes(snap_path));
            std::fprintf(stderr, "resumed from %s\n", snap_path.c_str());
        }

        sim::SystemResult res = system.run();
        writeResult(result_path, res);
        return 0;
    } catch (const resilience::SimError &e) {
        if (e.kind() == resilience::ErrorKind::Interrupted) {
            std::fprintf(stderr,
                         "interrupted; final snapshot in %s (%s)\n",
                         snap_path.c_str(), e.what());
            return 3;
        }
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
