/**
 * @file
 * Table 2: tRCD and tRAS for different caching durations, derived from
 * the calibrated circuit timing model. The 1/16/64 ms rows are fit
 * anchors; the 4 ms row is a genuine prediction of the model.
 */

#include <cstdio>

#include "bench_common.hh"
#include "circuit/timing_model.hh"
#include "dram/spec.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader("tab02_timings",
                       "Table 2 (caching duration -> tRCD/tRAS)");

    circuit::TimingModel model;
    dram::DramTiming timing;

    std::printf("\n%-22s %10s %10s %8s %8s   %s\n", "caching duration",
                "tRCD(ns)", "tRAS(ns)", "tRCD(cy)", "tRAS(cy)",
                "paper(ns)");
    std::printf("%-22s %10.2f %10.2f %8d %8d   %s\n", "N/A (baseline)",
                model.trcdNs(64.0), model.trasNs(64.0), timing.tRCD,
                timing.tRAS, "13.75 / 35");

    struct Row {
        double ms;
        const char *paper;
    };
    const Row rows[] = {{1.0, "8 / 22"},
                        {4.0, "9 / 24   (model prediction)"},
                        {16.0, "11 / 28"}};
    for (const Row &row : rows) {
        circuit::DerivedTimings d =
            model.timingsForDuration(row.ms, timing);
        std::printf("%-20.0fms %10.2f %10.2f %8d %8d   %s\n", row.ms,
                    d.trcdNs, d.trasNs, d.trcdCycles, d.trasCycles,
                    row.paper);
    }
    std::printf("\n1 ms operating point: tRCD 11->%d, tRAS 28->%d "
                "cycles (paper: 4/8-cycle reduction).\n",
                model.timingsForDuration(1.0, timing).trcdCycles,
                model.timingsForDuration(1.0, timing).trasCycles);
    return 0;
}
