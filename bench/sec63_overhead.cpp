/**
 * @file
 * Section 6.3: ChargeCache hardware overhead — storage via the paper's
 * Equations (1)/(2), area and power via the calibrated SRAM model,
 * compared against a 4 MB LLC.
 *
 * Paper numbers: 43008 bits = 5376 B (672 B/core), 0.022 mm^2 (0.24% of
 * the LLC), 0.149 mW average (0.23% of the LLC's power).
 */

#include <cstdio>

#include "bench_common.hh"
#include "dram/spec.hh"
#include "mcpat_lite/overhead.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader("sec63_overhead",
                       "Section 6.3 (area & power overhead)");

    dram::DramOrg org = dram::DramSpec::ddr3_1600(2).org;
    mcpat_lite::ChargeCacheGeometry geo; // 8 cores, 2 ch, 128 entries.
    auto rep = mcpat_lite::estimateOverhead(geo, org);

    std::printf("\nEq. 2 entry size: %d bits "
                "(log2 R + log2 B + log2 Ro + 1 = 0+3+16+1)\n",
                mcpat_lite::entrySizeBits(org));
    std::printf("Eq. 1 storage: %llu bits = %llu bytes "
                "(%llu bytes/core)\n",
                (unsigned long long)rep.bits,
                (unsigned long long)rep.bytes,
                (unsigned long long)rep.bytesPerCore);
    std::printf("\n%-28s %12s %12s\n", "", "ChargeCache", "4MB LLC");
    std::printf("%-28s %9.4f mm2 %8.2f mm2\n", "area (22 nm)",
                rep.areaMm2, rep.llcAreaMm2);
    std::printf("%-28s %10.3f mW %9.2f mW\n", "power (avg)", rep.powerMw,
                rep.llcPowerMw);
    std::printf("\narea fraction of LLC:  %.2f%%   (paper: 0.24%%)\n",
                100 * rep.areaFractionOfLlc);
    std::printf("power fraction of LLC: %.2f%%   (paper: 0.23%%)\n",
                100 * rep.powerFractionOfLlc);
    std::printf("paper: 5376 bytes, 0.022 mm2, 0.149 mW.\n");

    std::printf("\n-- capacity scaling (Figure 10's cost axis) --\n");
    std::printf("%-10s %12s %12s %12s\n", "entries", "bytes/core",
                "area (mm2)", "power (mW)");
    for (int entries : {128, 256, 512, 1024}) {
        mcpat_lite::ChargeCacheGeometry g = geo;
        g.entries = entries;
        auto r = mcpat_lite::estimateOverhead(g, org);
        std::printf("%-10d %12llu %12.4f %12.3f\n", entries,
                    (unsigned long long)r.bytesPerCore, r.areaMm2,
                    r.powerMw);
    }
    return 0;
}
