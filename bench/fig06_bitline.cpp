/**
 * @file
 * Figure 6: bitline voltage during activation for a fully-charged vs a
 * partially-charged (64 ms-old) cell, from the circuit model (the
 * paper's SPICE substitute). Prints the waveform series plus the
 * ready-to-access crossings and the implied tRCD/tRAS reductions.
 *
 * Paper anchors: ready-to-access at ~10 ns (full) vs 14.5 ns (partial);
 * tRCD reduction 4.5 ns; tRAS reduction 9.6 ns.
 */

#include <cstdio>

#include "bench_common.hh"
#include "circuit/bitline.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader("fig06_bitline",
                       "Figure 6 (bitline voltage vs initial charge)");

    circuit::BitlineSim sim;
    circuit::BitlineTrace full = sim.simulate(sim.params().vdd, true);
    circuit::BitlineTrace aged = sim.simulateAge(64.0, true);

    std::printf("\ntime_ns,v_bitline_full,v_bitline_partial\n");
    for (size_t i = 0; i < full.timeNs.size() && i < aged.timeNs.size();
         i += 500) { // 1 ns sampling for the printed series.
        std::printf("%.1f,%.4f,%.4f\n", full.timeNs[i], full.vBitline[i],
                    aged.vBitline[i]);
        if (full.timeNs[i] > 40.0)
            break;
    }

    double ready_v = sim.params().readyFraction * sim.params().vdd;
    std::printf("\nready-to-access level: %.3f V\n", ready_v);
    std::printf("%-28s %10s %10s\n", "", "full", "64ms-old");
    std::printf("%-28s %8.2fns %8.2fns\n", "ready-to-access time",
                full.tReadyNs, aged.tReadyNs);
    std::printf("%-28s %8.2fns %8.2fns\n", "charge restored time",
                full.tRestoredNs, aged.tRestoredNs);
    std::printf("\ntRCD reduction headroom: %.2f ns (paper: 4.5 ns)\n",
                aged.tReadyNs - full.tReadyNs);
    std::printf("tRAS reduction headroom: %.2f ns (paper: 9.6 ns)\n",
                aged.tRestoredNs - full.tRestoredNs);
    std::printf("paper ready times: 10 ns (full), 14.5 ns (partial)\n");
    return 0;
}
