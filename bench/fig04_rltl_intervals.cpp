/**
 * @file
 * Figure 4: RLTL for time intervals {0.125, 0.25, 0.5, 1, 32} ms under
 * both open-row and closed-row policies; 4a single-core, 4b eight-core.
 *
 * Paper result: average 0.125ms-RLTL is already 66% (1-core) and 77%
 * (8-core); the row-buffer policy barely matters.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

namespace {

using namespace ccsim;

const std::vector<double> kWindows = {0.125, 0.25, 0.5, 1.0, 32.0};

sim::ConfigTweak
tweak(ctrl::RowPolicy policy, bool single_core)
{
    return [policy, single_core](sim::SimConfig &cfg) {
        cfg.ctrl.trackRltl = true;
        cfg.ctrl.rltlWindowsMs = kWindows;
        cfg.ctrl.rowPolicy = policy;
        if (single_core)
            cfg.targetInsts =
                std::max(cfg.targetInsts, bench::rltlInsts());
    };
}

void
printRow(const std::string &label, const sim::SystemResult &r)
{
    std::printf("%-12s", label.c_str());
    for (size_t i = 0; i < kWindows.size(); ++i)
        std::printf(" %7.1f%%", 100 * (r.activations ? r.rltl[i] : 0.0));
    std::printf("\n");
}

void
printPolicyHeader()
{
    std::printf("%-12s", "workload");
    for (double w : kWindows)
        std::printf(" %6.3gms", w);
    std::printf("   (cumulative RLTL)\n");
}

} // namespace

int
main()
{
    bench::printHeader("fig04_rltl_intervals",
                       "Figure 4a/4b (RLTL at 0.125..32 ms, "
                       "open-row vs closed-row)");

    // Each (policy, workload) point is independent: fan them across
    // the ParallelRunner (like the other figures) and print in order.
    const std::vector<std::string> singles = bench::singleWorkloads();
    for (auto policy : {ctrl::RowPolicy::Open, ctrl::RowPolicy::Closed}) {
        std::printf("\n-- Figure 4a: single-core, %s --\n",
                    ctrl::rowPolicyName(policy));
        printPolicyHeader();
        std::vector<sim::SystemResult> res =
            sim::runSweep(singles.size(), [&](size_t i) {
                return sim::runSingle(singles[i], sim::Scheme::Baseline,
                                      tweak(policy, true));
            });
        std::vector<std::vector<double>> acc(kWindows.size());
        for (size_t w = 0; w < singles.size(); ++w) {
            const sim::SystemResult &r = res[w];
            printRow(singles[w], r);
            if (r.activations > 100)
                for (size_t i = 0; i < kWindows.size(); ++i)
                    acc[i].push_back(r.rltl[i]);
        }
        std::printf("%-12s", "AVG");
        for (size_t i = 0; i < kWindows.size(); ++i)
            std::printf(" %7.1f%%", 100 * bench::mean(acc[i]));
        std::printf("\n");
    }

    const std::vector<int> mixes = bench::mainMixes();
    for (auto policy : {ctrl::RowPolicy::Open, ctrl::RowPolicy::Closed}) {
        std::printf("\n-- Figure 4b: eight-core, %s --\n",
                    ctrl::rowPolicyName(policy));
        printPolicyHeader();
        std::vector<sim::SystemResult> res =
            sim::runSweep(mixes.size(), [&](size_t i) {
                return sim::runMix(mixes[i], sim::Scheme::Baseline,
                                   tweak(policy, false));
            });
        std::vector<std::vector<double>> acc(kWindows.size());
        for (size_t m = 0; m < mixes.size(); ++m) {
            const sim::SystemResult &r = res[m];
            printRow("w" + std::to_string(mixes[m]), r);
            for (size_t i = 0; i < kWindows.size(); ++i)
                acc[i].push_back(r.rltl[i]);
        }
        std::printf("%-12s", "AVG");
        for (size_t i = 0; i < kWindows.size(); ++i)
            std::printf(" %7.1f%%", 100 * bench::mean(acc[i]));
        std::printf("\n");
    }
    std::printf("\npaper: avg 0.125ms-RLTL 66%% (1-core) / 77%% "
                "(8-core); policy has little effect.\n");
    return 0;
}
