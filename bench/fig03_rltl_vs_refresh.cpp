/**
 * @file
 * Figure 3: fraction of row activations that occur within 8 ms after
 * the row's previous precharge (8ms-RLTL) versus within 8 ms after the
 * row's last refresh — the paper's core motivation. 3a: 22 single-core
 * workloads (open-row); 3b: 20 eight-core mixes (closed-row).
 *
 * Paper result: 8ms-RLTL averages 86% (1-core) and is even higher for
 * 8-core, while the after-refresh fraction averages only ~12%.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader("fig03_rltl_vs_refresh",
                       "Figure 3a/3b (8ms-RLTL vs refresh recency)");

    auto tweak = [](sim::SimConfig &cfg) {
        cfg.ctrl.trackRltl = true;
        // The 8 ms metric needs milliseconds of simulated time.
        cfg.targetInsts = std::max(cfg.targetInsts, bench::rltlInsts());
    };
    // Default RLTL windows: index 4 is 8 ms.
    const size_t k8ms = 4;

    std::printf("\n-- Figure 3a: single-core workloads --\n");
    std::printf("%-12s %18s %22s\n", "workload", "8ms-RLTL",
                "accessed<=8ms after REF");
    const std::vector<std::string> singles = bench::singleWorkloads();
    // Every workload is an independent point: fan them across the
    // ParallelRunner (like the other figures) and print in order.
    std::vector<sim::SystemResult> res3a =
        sim::runSweep(singles.size(), [&](size_t i) {
            return sim::runSingle(singles[i], sim::Scheme::Baseline,
                                  tweak);
        });
    std::vector<double> rltls, refs;
    for (size_t i = 0; i < singles.size(); ++i) {
        const sim::SystemResult &r = res3a[i];
        double rltl = r.activations ? r.rltl[k8ms] : 0.0;
        double ref = r.activations ? r.afterRefresh8ms : 0.0;
        std::printf("%-12s %17.1f%% %21.1f%%\n", singles[i].c_str(),
                    100 * rltl, 100 * ref);
        if (r.activations > 100) { // hmmer-style: no DRAM traffic.
            rltls.push_back(rltl);
            refs.push_back(ref);
        }
    }
    std::printf("%-12s %17.1f%% %21.1f%%\n", "AVG",
                100 * bench::mean(rltls), 100 * bench::mean(refs));

    std::printf("\n-- Figure 3b: eight-core workloads --\n");
    std::printf("%-12s %18s %22s\n", "mix", "8ms-RLTL",
                "accessed<=8ms after REF");
    const std::vector<int> mixes = bench::mainMixes();
    std::vector<sim::SystemResult> res3b =
        sim::runSweep(mixes.size(), [&](size_t i) {
            return sim::runMix(mixes[i], sim::Scheme::Baseline, tweak);
        });
    std::vector<double> rltls8, refs8;
    for (size_t i = 0; i < mixes.size(); ++i) {
        const sim::SystemResult &r = res3b[i];
        std::printf("w%-11d %17.1f%% %21.1f%%\n", mixes[i],
                    100 * r.rltl[k8ms], 100 * r.afterRefresh8ms);
        rltls8.push_back(r.rltl[k8ms]);
        refs8.push_back(r.afterRefresh8ms);
    }
    std::printf("%-12s %17.1f%% %21.1f%%\n", "AVG",
                100 * bench::mean(rltls8), 100 * bench::mean(refs8));
    std::printf("\npaper: 1-core avg 8ms-RLTL 86%% vs 12%% after-REF; "
                "8-core RLTL higher still, after-REF unchanged.\n");
    return 0;
}
