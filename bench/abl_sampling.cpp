/**
 * @file
 * Ablation: SimPoint-style sampled simulation vs the full run.
 *
 * For each datacenter trace workload (kv-zipf, web-fanout,
 * analytics-scan — src/trace/datacenter.hh), generates a CCTR trace of
 * CCSIM_SAMPLING_INSTS instructions, runs it twice through a
 * single-core ChargeCache system:
 *
 *   - full: every instruction detailed (the ground truth);
 *   - sampled: profile -> cluster -> representative slices with
 *     SMARTS-style functional warming during the fast-forward plus a
 *     short detailed warmup (src/trace/sampling.hh).
 *
 * and reports, per workload: IPC and HCRAC-hit-rate relative error of
 * the sampled estimate, detailed-instruction fraction, and wall-clock
 * speedup (slices run serially, so the speedup is honest).
 *
 * A second section runs the paper's 8-core configuration (2 channels,
 * closed-row) on a heterogeneous datacenter mix — cores 0-2 kv-zipf,
 * 3-5 web-fanout, 6-7 analytics-scan, each with a private seed and
 * address-space slice — and validates the multi-core co-phase sampler
 * against the full 8-core run (aggregate IPC throughput and shared
 * HCRAC hit rate). Scale with CCSIM_SAMPLING_MC_INSTS (per-core
 * instructions, default 2.5M -> 20M total; 0 disables the section;
 * the soak dispatch runs 25M -> 200M total).
 *
 * Emits BENCH_sampling.json (JSON lines: one record per workload plus
 * a trailing summary) and appends the summary to the JSONL trajectory
 * named by CCSIM_BENCH_TRAJECTORY, following BENCH_vm.json's
 * conventions.
 *
 * With CCSIM_SAMPLING_GATE=1 (the CI perf-trajectory job) the run
 * exits non-zero when:
 *   - any workload's IPC or HCRAC relative error exceeds
 *     CCSIM_SAMPLING_TOL (default 0.03 — the ISSUE-7 acceptance
 *     criterion), or
 *   - the all-workload wall-clock speedup falls below
 *     CCSIM_SAMPLING_SPEEDUP (default 10.0; push/PR CI smoke runs at
 *     reduced trace length and sets a lower floor, the
 *     workflow_dispatch soak runs full length with the 10x floor —
 *     speedup scales with trace length at fixed cluster count).
 *
 * Scale via CCSIM_SAMPLING_INSTS (default 20M; the checked-in record
 * was produced at 200M), CCSIM_SAMPLING_INTERVAL (1M),
 * CCSIM_SAMPLING_WARMUP (100k — functional warming carries the cache
 * state, so the detailed lead-in only settles timing),
 * CCSIM_SAMPLING_FUNCWARM (4M; 0 reverts to cold-start fast-forward),
 * CCSIM_SAMPLING_CLUSTERS (6), CCSIM_SAMPLING_MC_INTERVAL (500k).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "dram/addr.hh"
#include "resilience/io.hh"
#include "trace/datacenter.hh"
#include "trace/format.hh"
#include "trace/replay.hh"
#include "trace/sampling.hh"

namespace {

using namespace ccsim;
using sim::envF64;
using sim::envU64;

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

sim::SimConfig
samplingConfig()
{
    sim::SimConfig cfg;
    cfg.nCores = 1;
    cfg.channels = 1;
    cfg.scheme = sim::Scheme::ChargeCache;
    cfg.kernel = sim::KernelMode::Calendar;
    cfg.finalizeChargeCache();
    return cfg;
}

/** LLC-busting datacenter configs (see tests/test_sampling.cc: an
    LLC-resident working set turns warmup length into the error
    budget; production serving footprints dwarf a 4 MB LLC anyway). */
std::unique_ptr<cpu::TraceSource>
makeWorkload(const std::string &name, std::uint64_t seed, Addr base,
             Addr capacity)
{
    if (name == "kv-zipf") {
        trace::ZipfianKVConfig kv;
        kv.nKeys = 1 << 15;
        kv.valueLines = 32; // 2 KB values over a 64 MB region: the
                            // HCRAC hit mass is intra-request
                            // (sequential value lines re-hitting the
                            // just-activated row), inside the sampling
                            // validity envelope (docs/traces.md).
        kv.theta = 0.6;
        kv.indexLines = 1 << 14;
        kv.phaseRequests = 40000; // Hot-key churn phases (~3M insts).
        return std::make_unique<trace::ZipfianKVTrace>(kv, seed, base,
                                                       capacity);
    }
    if (name == "web-fanout") {
        trace::WebTierConfig web;
        web.nUsers = 1 << 20; // Session region far past the LLC.
        web.phaseRequests = 200000; // Diurnal hot-user shift.
        return std::make_unique<trace::WebTierTrace>(web, seed, base,
                                                     capacity);
    }
    trace::AnalyticsScanConfig an;
    an.tableLines = 1 << 17; // 8 MB per column, 4 columns.
    an.dimLines = 1 << 16;   // 4 MB dimension table.
    an.scanLinesPerPhase = 1 << 17;
    return std::make_unique<trace::AnalyticsScanTrace>(an, seed, base,
                                                       capacity);
}

struct WorkloadResult {
    std::string name;
    std::uint64_t records = 0;
    std::uint64_t insts = 0;
    std::uint64_t intervals = 0;
    int clusters = 0;
    std::uint64_t detailedInsts = 0;
    std::uint64_t functionalInsts = 0;
    double ipcFull = 0, ipcSampled = 0, ipcErr = 0;
    double hcracFull = 0, hcracSampled = 0, hcracErr = 0;
    double tFull = 0, tSampled = 0;
};

double
relErr(double sampled, double full)
{
    return full > 0 ? std::fabs(sampled - full) / full : 0.0;
}

} // namespace

int
main()
{
    bench::printHeader(
        "abl_sampling",
        "SimPoint-style sampled simulation accuracy/speedup on "
        "datacenter traces (Sherwood et al. ASPLOS'02 methodology; "
        "HCRAC claims on realistic streams)");

    const std::uint64_t targetInsts =
        envU64("CCSIM_SAMPLING_INSTS", 20'000'000);
    trace::SamplingConfig sc;
    sc.intervalInsts = envU64("CCSIM_SAMPLING_INTERVAL", 1'000'000);
    sc.warmupInsts = envU64("CCSIM_SAMPLING_WARMUP", 100'000);
    sc.functionalWarmInsts =
        envU64("CCSIM_SAMPLING_FUNCWARM", 4'000'000);
    sc.maxClusters = static_cast<std::uint32_t>(
        envU64("CCSIM_SAMPLING_CLUSTERS", 6));

    const sim::SimConfig cfg = samplingConfig();
    const Addr capacity =
        dram::AddressMapper(cfg.buildSpec().org, cfg.mapping).numLines();

    const std::vector<std::string> names = {"kv-zipf", "web-fanout",
                                            "analytics-scan"};
    std::vector<WorkloadResult> results;
    double tFullTotal = 0, tSampledTotal = 0;

    for (const auto &name : names) {
        WorkloadResult wr;
        wr.name = name;
        const std::string path = "abl_sampling_" + name + ".cctr";

        // Generate to the instruction target (records are variable
        // length in instructions, so write until the meta crosses it).
        {
            auto gen = makeWorkload(name, cfg.seed, 0, capacity);
            trace::TraceWriter w(path);
            cpu::TraceRecord rec;
            while (w.meta().totalInsts < targetInsts && gen->next(rec))
                w.append(rec);
            trace::TraceMeta meta = w.close();
            wr.records = meta.totalRecords;
            wr.insts = meta.totalInsts;
        }

        // Sampled: profile + cluster + representative slices.
        double t0 = now_s();
        trace::SampledSimulation sampled(cfg, path, sc);
        trace::SampledResult s = sampled.run();
        wr.tSampled = now_s() - t0;
        wr.intervals = s.intervals.size();
        wr.clusters = s.clusters;
        wr.detailedInsts = s.detailedInsts;
        wr.functionalInsts = s.functionalInsts;
        wr.ipcSampled = s.aggregate.ipc[0];
        wr.hcracSampled = s.aggregate.hcracHitRate;

        if (envU64("CCSIM_SAMPLING_VERBOSE", 0)) {
            for (const auto &sl : s.slices)
                std::printf("  slice iv=%llu w=%.3f ipc=%.4f "
                            "hcrac=%.4f acts=%llu\n",
                            (unsigned long long)sl.interval, sl.weight,
                            sl.result.ipc[0], sl.result.hcracHitRate,
                            (unsigned long long)sl.result.activations);
        }

        // Full: every instruction detailed, same warmup discipline.
        t0 = now_s();
        sim::SimConfig full = cfg;
        full.warmupInsts = sc.warmupInsts;
        full.targetInsts = wr.insts - sc.warmupInsts;
        trace::TraceReplaySource src(path);
        sim::System sys(full,
                        std::vector<cpu::TraceSource *>{&src});
        sim::SystemResult f = sys.run();
        wr.tFull = now_s() - t0;
        wr.ipcFull = f.ipc[0];
        wr.hcracFull = f.hcracHitRate;
        if (envU64("CCSIM_SAMPLING_VERBOSE", 0))
            std::printf("  full acts=%llu acts/inst=%.5f\n",
                        (unsigned long long)f.activations,
                        static_cast<double>(f.activations) /
                            static_cast<double>(full.targetInsts));

        wr.ipcErr = relErr(wr.ipcSampled, wr.ipcFull);
        wr.hcracErr = relErr(wr.hcracSampled, wr.hcracFull);
        tFullTotal += wr.tFull;
        tSampledTotal += wr.tSampled;
        results.push_back(wr);
        std::remove(path.c_str());

        std::printf("%-14s insts %llu recs %llu intervals %llu k=%d "
                    "detailed %.1f%%\n",
                    name.c_str(), (unsigned long long)wr.insts,
                    (unsigned long long)wr.records,
                    (unsigned long long)wr.intervals, wr.clusters,
                    100.0 * wr.detailedInsts / wr.insts);
        std::printf(
            "  ipc   full %.4f sampled %.4f err %5.2f%%   "
            "hcrac full %.4f sampled %.4f err %5.2f%%\n",
            wr.ipcFull, wr.ipcSampled, 100.0 * wr.ipcErr, wr.hcracFull,
            wr.hcracSampled, 100.0 * wr.hcracErr);
        std::printf("  time  full %.2fs sampled %.2fs speedup %.1fx\n",
                    wr.tFull, wr.tSampled,
                    wr.tSampled > 0 ? wr.tFull / wr.tSampled : 0.0);
    }

    const double speedup =
        tSampledTotal > 0 ? tFullTotal / tSampledTotal : 0.0;
    double maxIpcErr = 0, maxHcracErr = 0;
    for (const auto &wr : results) {
        maxIpcErr = std::max(maxIpcErr, wr.ipcErr);
        maxHcracErr = std::max(maxHcracErr, wr.hcracErr);
    }
    std::printf("\nall workloads: speedup %.1fx, max ipc err %.2f%%, "
                "max hcrac err %.2f%%\n",
                speedup, 100.0 * maxIpcErr, 100.0 * maxHcracErr);

    // 8-core datacenter mix (paper configuration: 2 channels,
    // closed-row). Heterogeneous per-core workloads with private
    // seeds and address-space slices exercise the co-phase sampler:
    // the clustered signature is the concatenation of all cores'
    // per-interval signatures, and the shared LLC + HCRAC are warmed
    // functionally across the merged streams.
    const std::uint64_t mcPerCore =
        envU64("CCSIM_SAMPLING_MC_INSTS", 2'500'000);
    const bool ranMix = mcPerCore > 0;
    WorkloadResult mc;
    trace::SamplingConfig msc = sc;
    if (ranMix) {
        mc.name = "mix-8core";
        sim::SimConfig mcfg = sim::SimConfig::eightCore();
        mcfg.scheme = sim::Scheme::ChargeCache;
        mcfg.kernel = sim::KernelMode::Calendar;
        mcfg.finalizeChargeCache();
        const Addr mcCap =
            dram::AddressMapper(mcfg.buildSpec().org, mcfg.mapping)
                .numLines();

        // Per-core intervals are shorter than the single-core default
        // so the smoke scale (2.5M insts/core) still yields enough
        // intervals to cluster.
        msc.intervalInsts =
            envU64("CCSIM_SAMPLING_MC_INTERVAL", 500'000);
        if (msc.warmupInsts >= msc.intervalInsts)
            msc.warmupInsts = msc.intervalInsts / 5;

        static const char *kMix[8] = {
            "kv-zipf",    "kv-zipf",    "kv-zipf",
            "web-fanout", "web-fanout", "web-fanout",
            "analytics-scan", "analytics-scan"};
        std::vector<std::string> paths;
        for (int c = 0; c < mcfg.nCores; ++c) {
            const std::string p =
                "abl_sampling_mix_c" + std::to_string(c) + ".cctr";
            auto gen = makeWorkload(kMix[c], mcfg.seed + 11 * c + 1,
                                    (mcCap / mcfg.nCores) * c, mcCap);
            trace::TraceWriter w(p);
            cpu::TraceRecord rec;
            while (w.meta().totalInsts < mcPerCore && gen->next(rec))
                w.append(rec);
            trace::TraceMeta meta = w.close();
            mc.insts += meta.totalInsts;
            mc.records += meta.totalRecords;
            paths.push_back(p);
        }

        double t0 = now_s();
        trace::SampledSimulation sampled(mcfg, paths, msc);
        trace::SampledResult s = sampled.run();
        mc.tSampled = now_s() - t0;
        mc.intervals = s.intervals.size();
        mc.clusters = s.clusters;
        mc.detailedInsts = s.detailedInsts;
        mc.functionalInsts = s.functionalInsts;
        for (double v : s.aggregate.ipc)
            mc.ipcSampled += v;
        mc.hcracSampled = s.aggregate.hcracHitRate;

        t0 = now_s();
        sim::SimConfig full = mcfg;
        full.warmupInsts = msc.warmupInsts;
        full.targetInsts = mcPerCore - msc.warmupInsts;
        std::vector<std::unique_ptr<trace::TraceReplaySource>> srcs;
        std::vector<cpu::TraceSource *> raw;
        for (const auto &p : paths) {
            srcs.push_back(
                std::make_unique<trace::TraceReplaySource>(p));
            raw.push_back(srcs.back().get());
        }
        sim::System sys(full, raw);
        sim::SystemResult f = sys.run();
        mc.tFull = now_s() - t0;
        for (double v : f.ipc)
            mc.ipcFull += v;
        mc.hcracFull = f.hcracHitRate;
        for (const auto &p : paths)
            std::remove(p.c_str());

        mc.ipcErr = relErr(mc.ipcSampled, mc.ipcFull);
        mc.hcracErr = relErr(mc.hcracSampled, mc.hcracFull);

        std::printf("\n%-14s insts %llu recs %llu intervals %llu k=%d "
                    "detailed %.1f%% functional %.1f%%\n",
                    mc.name.c_str(), (unsigned long long)mc.insts,
                    (unsigned long long)mc.records,
                    (unsigned long long)mc.intervals, mc.clusters,
                    100.0 * mc.detailedInsts / mc.insts,
                    100.0 * mc.functionalInsts / mc.insts);
        std::printf(
            "  ipc   full %.4f sampled %.4f err %5.2f%%   "
            "hcrac full %.4f sampled %.4f err %5.2f%%\n",
            mc.ipcFull, mc.ipcSampled, 100.0 * mc.ipcErr, mc.hcracFull,
            mc.hcracSampled, 100.0 * mc.hcracErr);
        std::printf("  time  full %.2fs sampled %.2fs speedup %.1fx\n",
                    mc.tFull, mc.tSampled,
                    mc.tSampled > 0 ? mc.tFull / mc.tSampled : 0.0);
    }

    auto write_points = [&](std::FILE *f) {
        for (const auto &wr : results) {
            std::fprintf(
                f,
                "{\"bench\": \"sampling\", \"workload\": \"%s\", "
                "\"insts\": %llu, \"records\": %llu, "
                "\"intervals\": %llu, \"clusters\": %d, "
                "\"interval_insts\": %llu, \"warmup_insts\": %llu, "
                "\"funcwarm_insts\": %llu, "
                "\"detailed_insts\": %llu, "
                "\"functional_insts\": %llu, "
                "\"ipc_full\": %.6f, \"ipc_sampled\": %.6f, "
                "\"ipc_err\": %.6f, "
                "\"hcrac_full\": %.6f, \"hcrac_sampled\": %.6f, "
                "\"hcrac_err\": %.6f, "
                "\"t_full_s\": %.3f, \"t_sampled_s\": %.3f, "
                "\"speedup\": %.3f}\n",
                wr.name.c_str(), (unsigned long long)wr.insts,
                (unsigned long long)wr.records,
                (unsigned long long)wr.intervals, wr.clusters,
                (unsigned long long)sc.intervalInsts,
                (unsigned long long)sc.warmupInsts,
                (unsigned long long)sc.functionalWarmInsts,
                (unsigned long long)wr.detailedInsts,
                (unsigned long long)wr.functionalInsts, wr.ipcFull,
                wr.ipcSampled, wr.ipcErr, wr.hcracFull, wr.hcracSampled,
                wr.hcracErr, wr.tFull, wr.tSampled,
                wr.tSampled > 0 ? wr.tFull / wr.tSampled : 0.0);
        }
        if (ranMix) {
            std::fprintf(
                f,
                "{\"bench\": \"sampling_mix\", \"cores\": 8, "
                "\"insts\": %llu, \"records\": %llu, "
                "\"intervals\": %llu, \"clusters\": %d, "
                "\"interval_insts\": %llu, \"warmup_insts\": %llu, "
                "\"funcwarm_insts\": %llu, "
                "\"detailed_insts\": %llu, "
                "\"functional_insts\": %llu, "
                "\"ipc_full\": %.6f, \"ipc_sampled\": %.6f, "
                "\"ipc_err\": %.6f, "
                "\"hcrac_full\": %.6f, \"hcrac_sampled\": %.6f, "
                "\"hcrac_err\": %.6f, "
                "\"t_full_s\": %.3f, \"t_sampled_s\": %.3f, "
                "\"speedup\": %.3f}\n",
                (unsigned long long)mc.insts,
                (unsigned long long)mc.records,
                (unsigned long long)mc.intervals, mc.clusters,
                (unsigned long long)msc.intervalInsts,
                (unsigned long long)msc.warmupInsts,
                (unsigned long long)msc.functionalWarmInsts,
                (unsigned long long)mc.detailedInsts,
                (unsigned long long)mc.functionalInsts, mc.ipcFull,
                mc.ipcSampled, mc.ipcErr, mc.hcracFull, mc.hcracSampled,
                mc.hcracErr, mc.tFull, mc.tSampled,
                mc.tSampled > 0 ? mc.tFull / mc.tSampled : 0.0);
        }
    };
    auto write_summary = [&](std::FILE *f) {
        std::fprintf(
            f,
            "{\"bench\": \"sampling_summary\", \"insts\": %llu, "
            "\"workloads\": %d, \"max_ipc_err\": %.6f, "
            "\"max_hcrac_err\": %.6f, \"speedup\": %.3f, "
            "\"t_full_s\": %.3f, \"t_sampled_s\": %.3f, "
            "\"mix_insts\": %llu, \"mix_ipc_err\": %.6f, "
            "\"mix_hcrac_err\": %.6f, \"mix_speedup\": %.3f}\n",
            (unsigned long long)targetInsts,
            static_cast<int>(results.size()), maxIpcErr, maxHcracErr,
            speedup, tFullTotal, tSampledTotal,
            (unsigned long long)mc.insts, mc.ipcErr, mc.hcracErr,
            mc.tSampled > 0 ? mc.tFull / mc.tSampled : 0.0);
    };

    const std::string record = bench::captureRecord([&](std::FILE *f) {
        write_points(f);
        write_summary(f);
    });
    if (!resilience::tryAtomicWriteFile("BENCH_sampling.json", record)) {
        std::fprintf(stderr, "cannot write BENCH_sampling.json\n");
        return 1;
    }
    std::printf("wrote BENCH_sampling.json\n");

    if (const char *traj = std::getenv("CCSIM_BENCH_TRAJECTORY");
        traj && *traj) {
        const std::string summary =
            bench::captureRecord([&](std::FILE *f) { write_summary(f); });
        if (!resilience::tryAtomicAppendFile(traj, summary)) {
            std::fprintf(stderr, "cannot append to %s\n", traj);
            return 1;
        }
        std::printf("appended summary to %s\n", traj);
    }

    // CI accuracy gate (mirrors CCSIM_VM_GATE / CCSIM_KERNEL_GATE).
    if (envU64("CCSIM_SAMPLING_GATE", 0)) {
        const double tol = envF64("CCSIM_SAMPLING_TOL", 0.03);
        const double floor = envF64("CCSIM_SAMPLING_SPEEDUP", 10.0);
        if (maxIpcErr > tol || maxHcracErr > tol) {
            std::fprintf(stderr,
                         "GATE FAILED: sampling error ipc %.2f%% / "
                         "hcrac %.2f%% exceeds %.2f%%\n",
                         100.0 * maxIpcErr, 100.0 * maxHcracErr,
                         100.0 * tol);
            return 2;
        }
        if (ranMix && (mc.ipcErr > tol || mc.hcracErr > tol)) {
            std::fprintf(stderr,
                         "GATE FAILED: 8-core mix error ipc %.2f%% / "
                         "hcrac %.2f%% exceeds %.2f%%\n",
                         100.0 * mc.ipcErr, 100.0 * mc.hcracErr,
                         100.0 * tol);
            return 2;
        }
        if (speedup < floor) {
            std::fprintf(stderr,
                         "GATE FAILED: sampled speedup %.1fx below "
                         "%.1fx floor\n",
                         speedup, floor);
            return 2;
        }
        std::printf("sampling gate passed: err ipc %.2f%% hcrac %.2f%% "
                    "mix ipc %.2f%% mix hcrac %.2f%% (tol %.1f%%), "
                    "speedup %.1fx (floor %.1fx)\n",
                    100.0 * maxIpcErr, 100.0 * maxHcracErr,
                    100.0 * mc.ipcErr, 100.0 * mc.hcracErr, 100.0 * tol,
                    speedup, floor);
    }
    return 0;
}
