/**
 * @file
 * Figure 9: average ChargeCache (HCRAC) hit rate versus capacity, for
 * single-core and eight-core systems at 1 ms caching duration, plus the
 * unlimited-capacity upper bound (the figure's dashed lines).
 *
 * Paper result: 128 entries is the sweet spot — 38% (1-core) and 66%
 * (8-core) hit rate; diminishing returns beyond.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader("fig09_hitrate",
                       "Figure 9 (HCRAC hit rate vs capacity)");

    const int capacities[] = {32, 64, 128, 256, 512, 1024, 2048};

    std::printf("\n%-10s %14s %14s\n", "entries", "single-core",
                "eight-core");
    double unlimited_single = 0, unlimited_eight = 0;
    for (int entries : capacities) {
        auto tweak = [entries](sim::SimConfig &cfg) {
            cfg.cc.table.entries = entries;
            cfg.cc.trackUnlimited = true;
        };
        std::vector<double> single, eight, unl_s, unl_e;
        for (const auto &w : bench::singleWorkloads()) {
            sim::SystemResult r =
                sim::runSingle(w, sim::Scheme::ChargeCache, tweak);
            if (r.activations > 100) {
                single.push_back(r.hcracHitRate);
                unl_s.push_back(r.unlimitedHitRate);
            }
        }
        for (int mix : bench::sweepMixes()) {
            sim::SystemResult r =
                sim::runMix(mix, sim::Scheme::ChargeCache, tweak);
            eight.push_back(r.hcracHitRate);
            unl_e.push_back(r.unlimitedHitRate);
        }
        unlimited_single = bench::mean(unl_s);
        unlimited_eight = bench::mean(unl_e);
        std::printf("%-10d %13.1f%% %13.1f%%\n", entries,
                    100 * bench::mean(single), 100 * bench::mean(eight));
    }
    std::printf("%-10s %13.1f%% %13.1f%%   (dashed upper bound)\n",
                "unlimited", 100 * unlimited_single,
                100 * unlimited_eight);
    std::printf("\npaper: 128 entries -> 38%% (1-core) / 66%% (8-core); "
                "sweet spot at 128.\n");
    return 0;
}
