/**
 * @file
 * Figure 9: average ChargeCache (HCRAC) hit rate versus capacity, for
 * single-core and eight-core systems at 1 ms caching duration, plus the
 * unlimited-capacity upper bound (the figure's dashed lines).
 *
 * Paper result: 128 entries is the sweet spot — 38% (1-core) and 66%
 * (8-core) hit rate; diminishing returns beyond.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader("fig09_hitrate",
                       "Figure 9 (HCRAC hit rate vs capacity)");

    const int capacities[] = {32, 64, 128, 256, 512, 1024, 2048};

    std::printf("\n%-10s %14s %14s\n", "entries", "single-core",
                "eight-core");
    double unlimited_single = 0, unlimited_eight = 0;
    const auto workloads_1c = bench::singleWorkloads();
    const auto mixes = bench::sweepMixes();
    for (int entries : capacities) {
        auto tweak = [entries](sim::SimConfig &cfg) {
            cfg.cc.table.entries = entries;
            cfg.cc.trackUnlimited = true;
        };
        // One capacity row: all workloads and mixes in parallel.
        const size_t n1 = workloads_1c.size();
        std::vector<sim::SystemResult> res = sim::runSweep(
            n1 + mixes.size(),
            [&](size_t i) {
                return i < n1 ? sim::runSingle(workloads_1c[i],
                                               sim::Scheme::ChargeCache,
                                               tweak)
                              : sim::runMix(mixes[i - n1],
                                            sim::Scheme::ChargeCache,
                                            tweak);
            });
        std::vector<double> single, eight, unl_s, unl_e;
        for (size_t i = 0; i < n1; ++i) {
            if (res[i].activations > 100) {
                single.push_back(res[i].hcracHitRate);
                unl_s.push_back(res[i].unlimitedHitRate);
            }
        }
        for (size_t i = n1; i < res.size(); ++i) {
            eight.push_back(res[i].hcracHitRate);
            unl_e.push_back(res[i].unlimitedHitRate);
        }
        unlimited_single = bench::mean(unl_s);
        unlimited_eight = bench::mean(unl_e);
        std::printf("%-10d %13.1f%% %13.1f%%\n", entries,
                    100 * bench::mean(single), 100 * bench::mean(eight));
    }
    std::printf("%-10s %13.1f%% %13.1f%%   (dashed upper bound)\n",
                "unlimited", 100 * unlimited_single,
                100 * unlimited_eight);
    std::printf("\npaper: 128 entries -> 38%% (1-core) / 66%% (8-core); "
                "sweet spot at 128.\n");
    return 0;
}
