#include "bench_common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "workloads/profiles.hh"

namespace ccsim::bench {

namespace {

int
envInt(const char *name, int def)
{
    return static_cast<int>(
        sim::envU64(name, static_cast<std::uint64_t>(def)));
}

} // namespace

std::vector<std::string>
singleWorkloads()
{
    return workloads::allProfileNames();
}

std::vector<int>
mainMixes()
{
    int n = envInt("CCSIM_MIXES", 20);
    std::vector<int> mixes;
    for (int i = 1; i <= n; ++i)
        mixes.push_back(i);
    return mixes;
}

std::vector<int>
sweepMixes()
{
    int n = envInt("CCSIM_SWEEP_MIXES", 5);
    std::vector<int> mixes;
    for (int i = 1; i <= n; ++i)
        mixes.push_back(i);
    return mixes;
}

std::uint64_t
rltlInsts()
{
    return static_cast<std::uint64_t>(envInt("CCSIM_RLTL_INSTS", 1000000));
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    sim::ExpScale s = sim::expScale();
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("scale: %llu insts/core, %llu warm-up (CCSIM_INSTS/CCSIM_WARMUP)\n",
                (unsigned long long)s.insts, (unsigned long long)s.warmup);
    std::printf("==============================================================\n");
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / values.size());
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / values.size();
}

std::string
captureRecord(const std::function<void(std::FILE *)> &emit)
{
    char *buf = nullptr;
    std::size_t size = 0;
    std::FILE *mem = open_memstream(&buf, &size);
    if (!mem)
        return std::string();
    emit(mem);
    std::fclose(mem);
    std::string out(buf, size);
    std::free(buf);
    return out;
}

} // namespace ccsim::bench
