#include "bench_common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "workloads/profiles.hh"

#ifndef CCSIM_GIT_SHA
#define CCSIM_GIT_SHA "unknown"
#endif

namespace ccsim::bench {

namespace {

int
envInt(const char *name, int def)
{
    return static_cast<int>(
        sim::envU64(name, static_cast<std::uint64_t>(def)));
}

/**
 * Build-provenance object spliced into every captured record: the git
 * revision and compiler the binary came from, an FNV-1a hash over the
 * build identity (revision + compiler + compile-time feature set) for
 * cheap "same build?" comparisons across trajectory rows, and the
 * host's hardware thread count (shard speedups are meaningless
 * without it).
 */
std::string
provenanceJson()
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const char *s) {
        for (; *s; ++s) {
            h ^= static_cast<unsigned char>(*s);
            h *= 1099511628211ull;
        }
    };
    mix(CCSIM_GIT_SHA);
    mix("|");
    mix(__VERSION__);
    mix("|");
#if CCSIM_OBS
    mix("obs=1");
#else
    mix("obs=0");
#endif
#ifdef NDEBUG
    mix("|ndebug");
#endif
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "\"prov\": {\"git_sha\": \"%s\", \"compiler\": \"%s\", "
                  "\"build_hash\": \"%016llx\", \"hw_threads\": %u}",
                  CCSIM_GIT_SHA, __VERSION__, (unsigned long long)h,
                  std::thread::hardware_concurrency());
    return buf;
}

} // namespace

std::vector<std::string>
singleWorkloads()
{
    return workloads::allProfileNames();
}

std::vector<int>
mainMixes()
{
    int n = envInt("CCSIM_MIXES", 20);
    std::vector<int> mixes;
    for (int i = 1; i <= n; ++i)
        mixes.push_back(i);
    return mixes;
}

std::vector<int>
sweepMixes()
{
    int n = envInt("CCSIM_SWEEP_MIXES", 5);
    std::vector<int> mixes;
    for (int i = 1; i <= n; ++i)
        mixes.push_back(i);
    return mixes;
}

std::uint64_t
rltlInsts()
{
    return static_cast<std::uint64_t>(envInt("CCSIM_RLTL_INSTS", 1000000));
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    sim::ExpScale s = sim::expScale();
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("scale: %llu insts/core, %llu warm-up (CCSIM_INSTS/CCSIM_WARMUP)\n",
                (unsigned long long)s.insts, (unsigned long long)s.warmup);
    std::printf("==============================================================\n");
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / values.size());
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / values.size();
}

std::string
captureRecord(const std::function<void(std::FILE *)> &emit)
{
    char *buf = nullptr;
    std::size_t size = 0;
    std::FILE *mem = open_memstream(&buf, &size);
    if (!mem)
        return std::string();
    emit(mem);
    std::fclose(mem);
    std::string out(buf, size);
    std::free(buf);
    // Splice build provenance into the record's top-level object (the
    // emitters all end with "}" or "}\n"); non-JSON output passes
    // through untouched.
    std::size_t pos = out.find_last_of('}');
    if (pos != std::string::npos)
        out.insert(pos, ", " + provenanceJson());
    return out;
}

} // namespace ccsim::bench
