/**
 * @file
 * Ablation (Section 6.1, left as future work): thrash-resistant HCRAC
 * insertion policies for high row-reuse-distance applications (mcf,
 * omnetpp), where plain LRU cannot hold rows long enough.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader(
        "abl_insertion_policy",
        "Section 6.1 future work (LRU vs LIP/BIP insertion)");

    const char *workloads[] = {"mcf", "omnetpp", "tpcc64", "apache20",
                               "tpch6"};
    const chargecache::InsertPolicy policies[] = {
        chargecache::InsertPolicy::Lru, chargecache::InsertPolicy::Lip,
        chargecache::InsertPolicy::Bip};

    std::printf("\n%-12s", "workload");
    for (auto p : policies)
        std::printf(" %11s", chargecache::insertPolicyName(p));
    std::printf("   (HCRAC hit rate; speedup vs baseline in parens)\n");

    for (const char *w : workloads) {
        double base_ipc = sim::runSingle(w, sim::Scheme::Baseline).ipc[0];
        std::printf("%-12s", w);
        for (auto policy : policies) {
            auto tweak = [policy](sim::SimConfig &cfg) {
                cfg.cc.table.policy = policy;
            };
            sim::SystemResult r =
                sim::runSingle(w, sim::Scheme::ChargeCache, tweak);
            std::printf("  %5.1f%%(%+.1f%%)", 100 * r.hcracHitRate,
                        100 * (r.ipc[0] / base_ipc - 1));
        }
        std::printf("\n");
    }
    std::printf("\npaper: suggests reuse/thrash-aware policies may help "
                "mcf/omnetpp-style workloads (future work there).\n");
    return 0;
}
