/**
 * @file
 * Ablation (Section 6.1, left as future work): thrash-resistant HCRAC
 * insertion policies for high row-reuse-distance applications (mcf,
 * omnetpp), where plain LRU cannot hold rows long enough.
 */

#include <cstdio>
#include <iterator>

#include "bench_common.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader(
        "abl_insertion_policy",
        "Section 6.1 future work (LRU vs LIP/BIP insertion)");

    const char *workloads[] = {"mcf", "omnetpp", "tpcc64", "apache20",
                               "tpch6"};
    const chargecache::InsertPolicy policies[] = {
        chargecache::InsertPolicy::Lru, chargecache::InsertPolicy::Lip,
        chargecache::InsertPolicy::Bip};

    std::printf("\n%-12s", "workload");
    for (auto p : policies)
        std::printf(" %11s", chargecache::insertPolicyName(p));
    std::printf("   (HCRAC hit rate; speedup vs baseline in parens)\n");

    // (workload x policy) grid plus one baseline per workload, all in
    // parallel; printed in order afterwards.
    const size_t n_workloads = std::size(workloads);
    const size_t n_policies = std::size(policies);
    std::vector<sim::SystemResult> base(n_workloads);
    std::vector<sim::SystemResult> res(n_workloads * n_policies);
    {
        sim::ParallelRunner pool;
        for (size_t i = 0; i < n_workloads; ++i) {
            pool.enqueue([&, i] {
                base[i] = sim::runSingle(workloads[i],
                                         sim::Scheme::Baseline);
            });
            for (size_t p = 0; p < n_policies; ++p) {
                auto policy = policies[p];
                pool.enqueue([&, i, p, policy] {
                    res[i * n_policies + p] = sim::runSingle(
                        workloads[i], sim::Scheme::ChargeCache,
                        [policy](sim::SimConfig &cfg) {
                            cfg.cc.table.policy = policy;
                        });
                });
            }
        }
        pool.waitAll();
    }
    for (size_t i = 0; i < n_workloads; ++i) {
        std::printf("%-12s", workloads[i]);
        for (size_t p = 0; p < n_policies; ++p) {
            const sim::SystemResult &r = res[i * n_policies + p];
            std::printf("  %5.1f%%(%+.1f%%)", 100 * r.hcracHitRate,
                        100 * (r.ipc[0] / base[i].ipc[0] - 1));
        }
        std::printf("\n");
    }
    std::printf("\npaper: suggests reuse/thrash-aware policies may help "
                "mcf/omnetpp-style workloads (future work there).\n");
    return 0;
}
