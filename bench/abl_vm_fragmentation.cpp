/**
 * @file
 * Ablation: how the virtual->physical page mapping shapes ChargeCache.
 *
 * Sweeps the page allocator — Contiguous, Fragmented at increasing
 * shuffle degrees, HugePage(2MB) — over multiprogrammed 4-core mixes
 * with the full VM subsystem enabled (per-core two-level TLBs + radix
 * page-table walks injected as real DRAM reads). Reports, per point:
 *
 *   - HCRAC hit rate: the quantity fragmentation destroys (adjacent
 *     virtual pages scatter across unrelated rows, so row revisits
 *     spread over more distinct rows and thrash the table);
 *   - PTW-row HCRAC hits: how often the walker's own rows re-activate
 *     within the caching duration (page-table locality is real row
 *     locality — walks are DRAM traffic, not magic);
 *   - TLB miss rate / average walk latency / IPC.
 *
 * Emits BENCH_vm.json (JSON lines: one record per allocator point plus
 * a trailing summary whose `monotone_drop` flags the acceptance
 * property — HCRAC hit rate falling monotonically from Contiguous
 * through Fragmented(1.0)). Appends the summary to the file named by
 * CCSIM_BENCH_TRAJECTORY when set, following BENCH_kernel.json's
 * JSONL-trajectory convention.
 *
 * With CCSIM_VM_GATE=1 (the CI perf-trajectory job) the run exits
 * non-zero when either trajectory invariant regresses, mirroring
 * CCSIM_KERNEL_GATE:
 *   - the HCRAC-hit monotone-drop invariant (`monotone_drop`) fails, or
 *   - the huge-page IPC uplift over the contiguous 4K baseline falls
 *     below CCSIM_VM_GATE_RATIO (default 1.0; the checked-in
 *     trajectory measures ~1.2-1.3x).
 *
 * Scale via CCSIM_VM_INSTS (default 40000 insts/core; CI smoke uses
 * less), CCSIM_VM_MIXES (default 2) and CCSIM_THREADS.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "resilience/io.hh"
#include "workloads/profiles.hh"

namespace {

using namespace ccsim;
using sim::envU64;

struct AllocPoint {
    vm::PageAlloc alloc;
    double degree; ///< Fragmented only.
    const char *label;
};

struct PointResult {
    double hcracHitRate = 0;
    double providerHitRate = 0;
    double ipcSum = 0;
    double tlbMissRate = 0;
    double avgWalkCycles = 0;
    std::uint64_t ptwReads = 0;
    std::uint64_t ptwActs = 0;
    std::uint64_t ptwActHits = 0;
    std::uint64_t walks = 0;
    std::uint64_t pagesMapped = 0;
};

sim::SimConfig
vmConfig(const AllocPoint &p, std::uint64_t insts)
{
    sim::SimConfig cfg = sim::SimConfig::eightCore();
    cfg.nCores = 4;
    cfg.scheme = sim::Scheme::ChargeCache;
    cfg.targetInsts = insts;
    cfg.warmupInsts = insts / 8;
    cfg.vm.enable = true;
    cfg.vm.alloc = p.alloc;
    cfg.vm.fragDegree = p.degree;
    cfg.finalizeChargeCache();
    return cfg;
}

} // namespace

int
main()
{
    bench::printHeader("abl_vm_fragmentation",
                       "VM page-allocation ablation: mapping vs "
                       "ChargeCache row locality (RLTL paper Sec. 2; "
                       "Virtuoso-style translation stack)");

    const std::uint64_t insts = envU64("CCSIM_VM_INSTS", 40000);
    const int mixes =
        static_cast<int>(envU64("CCSIM_VM_MIXES", 2));

    const std::vector<AllocPoint> points = {
        {vm::PageAlloc::Contiguous, 0.0, "contiguous"},
        {vm::PageAlloc::Fragmented, 0.25, "frag-0.25"},
        {vm::PageAlloc::Fragmented, 0.50, "frag-0.50"},
        {vm::PageAlloc::Fragmented, 0.75, "frag-0.75"},
        {vm::PageAlloc::Fragmented, 1.00, "frag-1.00"},
        {vm::PageAlloc::HugePage, 0.0, "hugepage-2M"},
    };

    // Working-set metadata via the profile plumbing: pages per mix at
    // both granularities (context for the TLB-reach numbers below).
    for (int mix = 1; mix <= mixes; ++mix) {
        std::uint64_t pages4k = 0, pages2m = 0;
        for (const auto &prof : workloads::mixProfiles(mix, 4)) {
            pages4k += prof.footprintPages(4096);
            pages2m += prof.footprintPages(2 * 1024 * 1024);
        }
        std::printf("mix w%-2d working set: %llu x 4K pages, "
                    "%llu x 2M pages\n",
                    mix, (unsigned long long)pages4k,
                    (unsigned long long)pages2m);
    }

    // All (allocator x mix) runs through the parallel runner; fold per
    // allocator afterwards.
    std::vector<sim::SystemResult> results =
        sim::runSweep(points.size() * mixes, [&](std::size_t i) {
            const AllocPoint &p = points[i / mixes];
            int mix = static_cast<int>(i % mixes) + 1;
            sim::SimConfig cfg = vmConfig(p, insts);
            sim::System system(cfg,
                               workloads::mixWorkloads(mix, cfg.nCores));
            return system.run();
        });

    std::printf("\n%-12s %10s %10s %9s %10s %10s %12s\n", "allocator",
                "hcrac-hit", "tlb-miss", "ipc-sum", "walk-cyc",
                "ptw-acts", "ptw-act-hits");

    std::vector<PointResult> folded(points.size());
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
        PointResult &f = folded[pi];
        for (int m = 0; m < mixes; ++m) {
            const sim::SystemResult &r = results[pi * mixes + m];
            f.hcracHitRate += r.hcracHitRate / mixes;
            f.providerHitRate += r.providerHitRate / mixes;
            f.ipcSum += r.ipcSum() / mixes;
            f.tlbMissRate += r.vm.missRate() / mixes;
            f.avgWalkCycles += r.vm.avgWalkCycles() / mixes;
            f.ptwReads += r.ctrl.ptwReads;
            f.ptwActs += r.ctrl.ptwActs;
            f.ptwActHits += r.ctrl.ptwActHits;
            f.walks += r.vm.walks;
            f.pagesMapped += r.vm.pagesMapped;
        }
        std::printf("%-12s %10.4f %10.4f %9.3f %10.1f %10llu %12llu\n",
                    points[pi].label, f.hcracHitRate, f.tlbMissRate,
                    f.ipcSum, f.avgWalkCycles,
                    (unsigned long long)f.ptwActs,
                    (unsigned long long)f.ptwActHits);
    }

    // Acceptance property: HCRAC hit rate drops monotonically from
    // Contiguous through the fragmentation degrees (points 0..4; the
    // huge-page point is a separate regime).
    bool monotone = true;
    for (std::size_t pi = 1; pi + 1 < points.size(); ++pi)
        if (folded[pi].hcracHitRate >
            folded[pi - 1].hcracHitRate + 1e-12)
            monotone = false;
    std::printf("\nmonotone hcrac drop contiguous -> frag(1.0): %s\n",
                monotone ? "yes" : "NO");

    auto write_points = [&](std::FILE *f) {
        for (std::size_t pi = 0; pi < points.size(); ++pi) {
            const PointResult &r = folded[pi];
            std::fprintf(
                f,
                "{\"bench\": \"vm_fragmentation\", \"alloc\": \"%s\", "
                "\"frag_degree\": %.2f, \"mixes\": %d, "
                "\"insts_per_core\": %llu, "
                "\"hcrac_hit_rate\": %.6f, \"provider_hit_rate\": %.6f, "
                "\"ipc_sum\": %.4f, \"tlb_miss_rate\": %.6f, "
                "\"avg_walk_cycles\": %.2f, \"walks\": %llu, "
                "\"pages_mapped\": %llu, \"ptw_reads\": %llu, "
                "\"ptw_acts\": %llu, \"ptw_act_hits\": %llu}\n",
                points[pi].label, points[pi].degree, mixes,
                (unsigned long long)insts, r.hcracHitRate,
                r.providerHitRate, r.ipcSum, r.tlbMissRate,
                r.avgWalkCycles, (unsigned long long)r.walks,
                (unsigned long long)r.pagesMapped,
                (unsigned long long)r.ptwReads,
                (unsigned long long)r.ptwActs,
                (unsigned long long)r.ptwActHits);
        }
    };
    // Huge-page IPC uplift over the contiguous 4K baseline — the other
    // gated trajectory invariant (TLB reach + walk elimination must
    // keep paying off).
    const double huge_ipc_uplift =
        folded[0].ipcSum > 0 ? folded[5].ipcSum / folded[0].ipcSum : 0.0;

    auto write_summary = [&](std::FILE *f) {
        std::fprintf(
            f,
            "{\"bench\": \"vm_fragmentation_summary\", "
            "\"insts_per_core\": %llu, \"mixes\": %d, "
            "\"monotone_drop\": %s, "
            "\"hcrac_contiguous\": %.6f, \"hcrac_frag_full\": %.6f, "
            "\"hcrac_hugepage\": %.6f, "
            "\"huge_ipc_uplift\": %.4f}\n",
            (unsigned long long)insts, mixes,
            monotone ? "true" : "false", folded[0].hcracHitRate,
            folded[4].hcracHitRate, folded[5].hcracHitRate,
            huge_ipc_uplift);
    };

    const std::string record = bench::captureRecord([&](std::FILE *f) {
        write_points(f);
        write_summary(f);
    });
    if (!resilience::tryAtomicWriteFile("BENCH_vm.json", record)) {
        std::fprintf(stderr, "cannot write BENCH_vm.json\n");
        return 1;
    }
    std::printf("wrote BENCH_vm.json\n");

    if (const char *traj = std::getenv("CCSIM_BENCH_TRAJECTORY");
        traj && *traj) {
        const std::string summary =
            bench::captureRecord([&](std::FILE *f) { write_summary(f); });
        if (!resilience::tryAtomicAppendFile(traj, summary)) {
            std::fprintf(stderr, "cannot append to %s\n", traj);
            return 1;
        }
        std::printf("appended summary to %s\n", traj);
    }

    // CI regression gate over the two trajectory invariants (mirrors
    // CCSIM_KERNEL_GATE in micro_kernel).
    if (envU64("CCSIM_VM_GATE", 0)) {
        const double tol = sim::envF64("CCSIM_VM_GATE_RATIO", 1.0);
        if (!monotone) {
            std::fprintf(stderr,
                         "GATE FAILED: HCRAC hit rate no longer drops "
                         "monotonically contiguous -> frag(1.0)\n");
            return 2;
        }
        if (huge_ipc_uplift < tol) {
            std::fprintf(stderr,
                         "GATE FAILED: huge-page IPC uplift %.3fx < "
                         "%.3fx over the contiguous baseline\n",
                         huge_ipc_uplift, tol);
            return 2;
        }
        std::printf("vm gate passed: monotone drop holds, huge-page "
                    "uplift %.2fx (threshold %.2f)\n",
                    huge_ipc_uplift, tol);
    }
    return 0;
}
