/**
 * @file
 * Ablation (paper footnote 2, left as future work): sharing one
 * ChargeCache across all cores instead of replicating per core. A
 * shared table of the same *total* capacity saves nothing; the
 * interesting question is whether a shared table with 1/8 the total
 * storage retains most of the hit rate.
 */

#include <cstdio>

#include "bench_common.hh"
#include "workloads/profiles.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader("abl_shared_cc",
                       "Footnote 2 (per-core vs shared HCRAC, 8-core)");

    struct Variant {
        const char *name;
        bool shared;
        int entries;
    };
    const Variant variants[] = {
        {"per-core 128 (paper)", false, 128},
        {"shared 128 (1/8 storage)", true, 128},
        {"shared 256 (1/4 storage)", true, 256},
        {"shared 1024 (same storage)", true, 1024},
    };

    const auto mixes = bench::sweepMixes();
    std::vector<sim::SystemResult> base = sim::runSweep(
        mixes.size(), [&](size_t i) {
            return sim::runMix(mixes[i], sim::Scheme::Baseline);
        });
    std::vector<double> base_ws;
    for (size_t i = 0; i < mixes.size(); ++i) {
        auto names = workloads::mixWorkloads(mixes[i]);
        base_ws.push_back(sim::weightedSpeedup(names, base[i].ipc));
    }

    std::printf("\n%-28s %10s %10s\n", "configuration", "hit rate",
                "speedup");
    for (const Variant &v : variants) {
        auto tweak = [&v](sim::SimConfig &cfg) {
            cfg.cc.sharedTable = v.shared;
            cfg.cc.table.entries = v.entries;
        };
        std::vector<sim::SystemResult> res = sim::runSweep(
            mixes.size(), [&](size_t i) {
                return sim::runMix(mixes[i], sim::Scheme::ChargeCache,
                                   tweak);
            });
        std::vector<double> hit, sp;
        for (size_t i = 0; i < mixes.size(); ++i) {
            auto names = workloads::mixWorkloads(mixes[i]);
            hit.push_back(res[i].hcracHitRate);
            sp.push_back(sim::weightedSpeedup(names, res[i].ipc) /
                         base_ws[i]);
        }
        std::printf("%-28s %9.1f%% %+9.2f%%\n", v.name,
                    100 * bench::mean(hit),
                    100 * (bench::geomean(sp) - 1));
    }
    std::printf("\npaper: 'sharing ChargeCache across cores can result "
                "in even lower overheads' (unevaluated there).\n");
    return 0;
}
