/**
 * @file
 * Figure 10: speedup versus ChargeCache capacity (single-core IPC
 * speedup; eight-core weighted speedup).
 *
 * Paper result: 8.8% at 128 entries and 10.6% at 1024 entries for the
 * eight-core system — benefits diminish with capacity.
 */

#include <cstdio>

#include "bench_common.hh"
#include "workloads/profiles.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader("fig10_capacity",
                       "Figure 10 (speedup vs ChargeCache capacity)");

    const int capacities[] = {32, 64, 128, 256, 512, 1024};

    // Baselines once.
    std::vector<double> base_single;
    for (const auto &w : bench::singleWorkloads())
        base_single.push_back(
            sim::runSingle(w, sim::Scheme::Baseline).ipc[0]);
    std::vector<double> base_eight;
    for (int mix : bench::sweepMixes()) {
        auto names = workloads::mixWorkloads(mix);
        sim::SystemResult r = sim::runMix(mix, sim::Scheme::Baseline);
        base_eight.push_back(sim::weightedSpeedup(names, r.ipc));
    }

    std::printf("\n%-10s %14s %14s\n", "entries", "single-core",
                "eight-core");
    for (int entries : capacities) {
        auto tweak = [entries](sim::SimConfig &cfg) {
            cfg.cc.table.entries = entries;
        };
        std::vector<double> single, eight;
        const auto &workload_names = bench::singleWorkloads();
        for (size_t i = 0; i < workload_names.size(); ++i) {
            sim::SystemResult r = sim::runSingle(
                workload_names[i], sim::Scheme::ChargeCache, tweak);
            single.push_back(r.ipc[0] / base_single[i]);
        }
        auto mixes = bench::sweepMixes();
        for (size_t i = 0; i < mixes.size(); ++i) {
            auto names = workloads::mixWorkloads(mixes[i]);
            sim::SystemResult r =
                sim::runMix(mixes[i], sim::Scheme::ChargeCache, tweak);
            eight.push_back(sim::weightedSpeedup(names, r.ipc) /
                            base_eight[i]);
        }
        std::printf("%-10d %+13.2f%% %+13.2f%%\n", entries,
                    100 * (bench::geomean(single) - 1),
                    100 * (bench::geomean(eight) - 1));
    }
    std::printf("\npaper (8-core): +8.8%% at 128 entries, +10.6%% at "
                "1024; diminishing returns.\n");
    return 0;
}
