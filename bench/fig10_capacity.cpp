/**
 * @file
 * Figure 10: speedup versus ChargeCache capacity (single-core IPC
 * speedup; eight-core weighted speedup).
 *
 * Paper result: 8.8% at 128 entries and 10.6% at 1024 entries for the
 * eight-core system — benefits diminish with capacity.
 */

#include <cstdio>

#include "bench_common.hh"
#include "workloads/profiles.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader("fig10_capacity",
                       "Figure 10 (speedup vs ChargeCache capacity)");

    const int capacities[] = {32, 64, 128, 256, 512, 1024};
    const auto workload_names = bench::singleWorkloads();
    const auto mixes = bench::sweepMixes();
    const size_t n1 = workload_names.size();

    // Baselines once (parallel), pre-warming the alone-IPC memo too.
    std::vector<sim::SystemResult> base = sim::runSweep(
        n1 + mixes.size(), [&](size_t i) {
            return i < n1 ? sim::runSingle(workload_names[i],
                                           sim::Scheme::Baseline)
                          : sim::runMix(mixes[i - n1],
                                        sim::Scheme::Baseline);
        });
    std::vector<double> base_single, base_eight;
    for (size_t i = 0; i < n1; ++i)
        base_single.push_back(base[i].ipc[0]);
    for (size_t i = 0; i < mixes.size(); ++i) {
        auto names = workloads::mixWorkloads(mixes[i]);
        base_eight.push_back(
            sim::weightedSpeedup(names, base[n1 + i].ipc));
    }

    std::printf("\n%-10s %14s %14s\n", "entries", "single-core",
                "eight-core");
    for (int entries : capacities) {
        auto tweak = [entries](sim::SimConfig &cfg) {
            cfg.cc.table.entries = entries;
        };
        std::vector<sim::SystemResult> res = sim::runSweep(
            n1 + mixes.size(), [&](size_t i) {
                return i < n1 ? sim::runSingle(workload_names[i],
                                               sim::Scheme::ChargeCache,
                                               tweak)
                              : sim::runMix(mixes[i - n1],
                                            sim::Scheme::ChargeCache,
                                            tweak);
            });
        std::vector<double> single, eight;
        for (size_t i = 0; i < n1; ++i)
            single.push_back(res[i].ipc[0] / base_single[i]);
        for (size_t i = 0; i < mixes.size(); ++i) {
            auto names = workloads::mixWorkloads(mixes[i]);
            eight.push_back(
                sim::weightedSpeedup(names, res[n1 + i].ipc) /
                base_eight[i]);
        }
        std::printf("%-10d %+13.2f%% %+13.2f%%\n", entries,
                    100 * (bench::geomean(single) - 1),
                    100 * (bench::geomean(eight) - 1));
    }
    std::printf("\npaper (8-core): +8.8%% at 128 entries, +10.6%% at "
                "1024; diminishing returns.\n");
    return 0;
}
