/**
 * @file
 * Figure 8: DRAM energy reduction of ChargeCache over the baseline —
 * average and maximum, single-core and eight-core. Energy includes the
 * ChargeCache structure's own static power (Section 6.3), so reported
 * savings are net.
 *
 * Paper result: up to 6.9% / avg 1.8% (1-core); up to 14.1% / avg 7.9%
 * (8-core).
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader("fig08_energy",
                       "Figure 8 (DRAM energy reduction of ChargeCache)");

    std::printf("\n-- single-core --\n");
    std::printf("%-12s %14s %14s %10s\n", "workload", "base (mJ)",
                "CC (mJ)", "saving");
    std::vector<double> single;
    for (const auto &w : bench::singleWorkloads()) {
        sim::SystemResult base = sim::runSingle(w, sim::Scheme::Baseline);
        sim::SystemResult cc =
            sim::runSingle(w, sim::Scheme::ChargeCache);
        double saving = 1.0 - cc.energy.totalNj() / base.energy.totalNj();
        std::printf("%-12s %14.3f %14.3f %9.2f%%\n", w.c_str(),
                    base.energy.totalNj() * 1e-6,
                    cc.energy.totalNj() * 1e-6, 100 * saving);
        if (base.activations > 100)
            single.push_back(saving);
    }

    std::printf("\n-- eight-core --\n");
    std::printf("%-12s %14s %14s %10s\n", "mix", "base (mJ)", "CC (mJ)",
                "saving");
    std::vector<double> eight;
    for (int mix : bench::mainMixes()) {
        sim::SystemResult base = sim::runMix(mix, sim::Scheme::Baseline);
        sim::SystemResult cc = sim::runMix(mix, sim::Scheme::ChargeCache);
        double saving = 1.0 - cc.energy.totalNj() / base.energy.totalNj();
        std::printf("w%-11d %14.3f %14.3f %9.2f%%\n", mix,
                    base.energy.totalNj() * 1e-6,
                    cc.energy.totalNj() * 1e-6, 100 * saving);
        eight.push_back(saving);
    }

    auto max_of = [](const std::vector<double> &v) {
        return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
    };
    std::printf("\n%-14s %10s %10s\n", "", "average", "maximum");
    std::printf("%-14s %9.2f%% %9.2f%%   (paper: 1.8%% / 6.9%%)\n",
                "single-core", 100 * bench::mean(single),
                100 * max_of(single));
    std::printf("%-14s %9.2f%% %9.2f%%   (paper: 7.9%% / 14.1%%)\n",
                "eight-core", 100 * bench::mean(eight),
                100 * max_of(eight));
    return 0;
}
