/**
 * @file
 * Ablation (Section 6.4 intro): HCRAC associativity. The paper reports
 * that going from 2-way to fully-associative improves hit rate by only
 * ~2%, justifying the cheap 2-way design.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader("abl_associativity",
                       "Section 6.4 (2-way vs full associativity)");

    const int ways_list[] = {1, 2, 4, 8, 128};

    std::printf("\n%-12s %14s %14s\n", "ways", "single-core",
                "eight-core");
    for (int ways : ways_list) {
        auto tweak = [ways](sim::SimConfig &cfg) {
            cfg.cc.table.ways = ways;
        };
        std::vector<double> single, eight;
        for (const auto &w : bench::singleWorkloads()) {
            sim::SystemResult r =
                sim::runSingle(w, sim::Scheme::ChargeCache, tweak);
            if (r.activations > 100)
                single.push_back(r.hcracHitRate);
        }
        for (int mix : bench::sweepMixes()) {
            sim::SystemResult r =
                sim::runMix(mix, sim::Scheme::ChargeCache, tweak);
            eight.push_back(r.hcracHitRate);
        }
        std::printf("%-12s %13.1f%% %13.1f%%\n",
                    ways == 128 ? "full (128)" : std::to_string(ways).c_str(),
                    100 * bench::mean(single), 100 * bench::mean(eight));
    }
    std::printf("\npaper: full-assoc improves hit rate by only ~2%% "
                "over 2-way.\n");
    return 0;
}
