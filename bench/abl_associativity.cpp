/**
 * @file
 * Ablation (Section 6.4 intro): HCRAC associativity. The paper reports
 * that going from 2-way to fully-associative improves hit rate by only
 * ~2%, justifying the cheap 2-way design.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader("abl_associativity",
                       "Section 6.4 (2-way vs full associativity)");

    const int ways_list[] = {1, 2, 4, 8, 128};
    const auto workloads_1c = bench::singleWorkloads();
    const auto mixes = bench::sweepMixes();
    const size_t n1 = workloads_1c.size();

    std::printf("\n%-12s %14s %14s\n", "ways", "single-core",
                "eight-core");
    for (int ways : ways_list) {
        auto tweak = [ways](sim::SimConfig &cfg) {
            cfg.cc.table.ways = ways;
        };
        std::vector<sim::SystemResult> res = sim::runSweep(
            n1 + mixes.size(), [&](size_t i) {
                return i < n1 ? sim::runSingle(workloads_1c[i],
                                               sim::Scheme::ChargeCache,
                                               tweak)
                              : sim::runMix(mixes[i - n1],
                                            sim::Scheme::ChargeCache,
                                            tweak);
            });
        std::vector<double> single, eight;
        for (size_t i = 0; i < n1; ++i)
            if (res[i].activations > 100)
                single.push_back(res[i].hcracHitRate);
        for (size_t i = n1; i < res.size(); ++i)
            eight.push_back(res[i].hcracHitRate);
        std::printf("%-12s %13.1f%% %13.1f%%\n",
                    ways == 128 ? "full (128)" : std::to_string(ways).c_str(),
                    100 * bench::mean(single), 100 * bench::mean(eight));
    }
    std::printf("\npaper: full-assoc improves hit rate by only ~2%% "
                "over 2-way.\n");
    return 0;
}
