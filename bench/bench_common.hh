/**
 * @file
 * Shared plumbing for the reproduction harness. Each bench binary
 * regenerates one table or figure of the ChargeCache paper (HPCA 2016)
 * and prints the same rows/series the paper reports.
 *
 * Scale knobs (defaults keep the full suite in tens of minutes):
 *   CCSIM_INSTS       instructions/core after warm-up (default 100000)
 *   CCSIM_WARMUP      warm-up instructions/core       (default 10000)
 *   CCSIM_MIXES       number of 8-core mixes for main figures (20)
 *   CCSIM_SWEEP_MIXES number of 8-core mixes for sweeps (5)
 */

#ifndef CCSIM_BENCH_BENCH_COMMON_HH
#define CCSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace ccsim::bench {

/** All 22 single-core workloads (paper Figure 4a order). */
std::vector<std::string> singleWorkloads();

/** Mix ids for the headline multi-core figures (w1..wN). */
std::vector<int> mainMixes();

/** Smaller mix set for parameter sweeps. */
std::vector<int> sweepMixes();

/**
 * Instruction budget for the RLTL characterisation figures (3 and 4).
 * The 8 ms-RLTL metric needs several milliseconds of simulated time per
 * workload to be meaningful, so these run longer than the speedup
 * benches (env CCSIM_RLTL_INSTS, default 1M instructions/core).
 */
std::uint64_t rltlInsts();

/** Banner: experiment id, paper reference, scale in use. */
void printHeader(const std::string &title, const std::string &paper_ref);

/** Geometric-mean helper for speedup aggregation. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/**
 * Run a FILE*-based record writer against an in-memory stream and
 * return what it wrote. Lets the benches keep their fprintf record
 * emitters while routing the bytes through
 * resilience::tryAtomicWriteFile / tryAtomicAppendFile, so a
 * BENCH_*.json or JSONL trajectory is replaced atomically — a
 * concurrent CI reader sees the old record or the new one, never a
 * torn file.
 *
 * Every JSON record additionally gets a "prov" object spliced into its
 * top level (git sha, compiler, build hash, hardware threads) so a
 * trajectory row can always be traced back to the build that produced
 * it.
 */
std::string captureRecord(const std::function<void(std::FILE *)> &emit);

} // namespace ccsim::bench

#endif // CCSIM_BENCH_BENCH_COMMON_HH
