/**
 * @file
 * Figure 11: speedup and HCRAC hit rate for caching durations of 1, 4,
 * 8, 16 ms. Longer durations keep entries alive longer (slightly higher
 * hit rate) but must use weaker timing reductions (Table 2), so the
 * best duration is the shortest — 1 ms.
 */

#include <cstdio>

#include "bench_common.hh"
#include "workloads/profiles.hh"

int
main()
{
    using namespace ccsim;
    bench::printHeader(
        "fig11_duration",
        "Figure 11 (speedup & hit rate vs caching duration)");

    const double durations[] = {1.0, 4.0, 8.0, 16.0};
    const auto workload_names = bench::singleWorkloads();
    const auto mixes = bench::sweepMixes();
    const size_t n1 = workload_names.size();

    std::vector<sim::SystemResult> base = sim::runSweep(
        n1 + mixes.size(), [&](size_t i) {
            return i < n1 ? sim::runSingle(workload_names[i],
                                           sim::Scheme::Baseline)
                          : sim::runMix(mixes[i - n1],
                                        sim::Scheme::Baseline);
        });
    std::vector<double> base_single, base_eight;
    for (size_t i = 0; i < n1; ++i)
        base_single.push_back(base[i].ipc[0]);
    for (size_t i = 0; i < mixes.size(); ++i) {
        auto names = workloads::mixWorkloads(mixes[i]);
        base_eight.push_back(
            sim::weightedSpeedup(names, base[n1 + i].ipc));
    }

    std::printf("\n%-10s %12s %10s %12s %10s\n", "duration",
                "1c speedup", "1c hit", "8c speedup", "8c hit");
    for (double ms : durations) {
        auto tweak = [ms](sim::SimConfig &cfg) {
            cfg.ccDurationMs = ms;
            cfg.ccUseTimingModel = true; // Table 2 timings per duration.
            cfg.finalizeChargeCache();
        };
        std::vector<sim::SystemResult> res = sim::runSweep(
            n1 + mixes.size(), [&](size_t i) {
                return i < n1 ? sim::runSingle(workload_names[i],
                                               sim::Scheme::ChargeCache,
                                               tweak)
                              : sim::runMix(mixes[i - n1],
                                            sim::Scheme::ChargeCache,
                                            tweak);
            });
        std::vector<double> sp1, hit1, sp8, hit8;
        for (size_t i = 0; i < n1; ++i) {
            sp1.push_back(res[i].ipc[0] / base_single[i]);
            if (res[i].activations > 100)
                hit1.push_back(res[i].hcracHitRate);
        }
        for (size_t i = 0; i < mixes.size(); ++i) {
            auto names = workloads::mixWorkloads(mixes[i]);
            sp8.push_back(
                sim::weightedSpeedup(names, res[n1 + i].ipc) /
                base_eight[i]);
            hit8.push_back(res[n1 + i].hcracHitRate);
        }
        std::printf("%-8.0fms %+11.2f%% %9.1f%% %+11.2f%% %9.1f%%\n", ms,
                    100 * (bench::geomean(sp1) - 1),
                    100 * bench::mean(hit1),
                    100 * (bench::geomean(sp8) - 1),
                    100 * bench::mean(hit8));
    }
    std::printf("\npaper: 1 ms is the empirically best duration; hit "
                "rate grows only ~2%% with longer durations while the "
                "timing benefit shrinks.\n");
    return 0;
}
