/**
 * @file
 * Telemetry-overhead microbenchmark and trace-export smoke check.
 *
 * Section 1 (timed): a 4-core calendar-kernel ChargeCache run executed
 * twice — telemetry off, then telemetry on in its production shape
 * (interval time-series + hot-path latency histograms) — best of
 * CCSIM_OBS_REPEAT (default 3) wall-clock runs each. The simulated
 * results must be bit-identical (the observation-only contract of
 * src/obs/, enforced here and in tests/test_obs.cc); the wall-clock
 * ratio is the telemetry overhead. Emits BENCH_obs.json and appends to
 * the perf trajectory when CCSIM_BENCH_TRAJECTORY names a file.
 *
 * With CCSIM_OBS_GATE=1 the binary exits non-zero when the overhead
 * ratio exceeds CCSIM_OBS_GATE_RATIO (default 1.05, the documented
 * <= 5% budget) — the CI perf-trajectory job's telemetry gate.
 *
 * Section 2 (untimed): a short run with the simulated-time and host
 * trace-event exporters on, written to CCSIM_OBS_TRACE_PATH (default
 * ccsim_trace.json) — CI parses it as JSON and archives it. Bank/
 * refresh span tracing is deliberately not part of the timed section:
 * it is an opt-in debugging view with per-DRAM-command cost, not part
 * of the always-on telemetry shape the 5% budget covers.
 *
 * When the tree was compiled with -DCCSIM_OBS=OFF the binary writes a
 * {"compiled": 0} record and exits 0 (nothing to measure: the hooks
 * do not exist).
 *
 * Scale via CCSIM_OBS_INSTS (default 40000 insts/core).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "resilience/io.hh"
#include "workloads/profiles.hh"

namespace {

using namespace ccsim;
using sim::envF64;
using sim::envU64;

sim::SimConfig
baseConfig(std::uint64_t insts)
{
    sim::SimConfig cfg = sim::SimConfig::eightCore();
    cfg.nCores = 4;
    cfg.scheme = sim::Scheme::ChargeCache;
    cfg.kernel = sim::KernelMode::Calendar;
    cfg.targetInsts = insts;
    cfg.warmupInsts = insts / 8;
    cfg.finalizeChargeCache();
    return cfg;
}

struct Timed {
    double wallSeconds = 0.0;
    sim::SystemResult result;
};

Timed
timedRun(const sim::SimConfig &cfg, int mix, std::uint64_t repeat)
{
    Timed best;
    for (std::uint64_t r = 0; r < repeat; ++r) {
        sim::System system(cfg, workloads::mixWorkloads(mix, cfg.nCores));
        auto start = std::chrono::steady_clock::now();
        sim::SystemResult res = system.run();
        auto end = std::chrono::steady_clock::now();
        double wall = std::chrono::duration<double>(end - start).count();
        if (r == 0 || wall < best.wallSeconds) {
            best.wallSeconds = wall;
            best.result = res;
        }
    }
    return best;
}

bool
sameResult(const sim::SystemResult &a, const sim::SystemResult &b)
{
    return a.cpuCycles == b.cpuCycles && a.ipc == b.ipc &&
           a.activations == b.activations &&
           a.hcracHitRate == b.hcracHitRate &&
           a.ctrl.reads == b.ctrl.reads &&
           a.ctrl.writes == b.ctrl.writes &&
           a.ctrl.acts == b.ctrl.acts &&
           a.ctrl.rowHits == b.ctrl.rowHits &&
           a.ctrl.readLatencySum == b.ctrl.readLatencySum &&
           a.llc.hits == b.llc.hits && a.llc.misses == b.llc.misses &&
           a.energy.totalNj() == b.energy.totalNj();
}

} // namespace

int
main()
{
    bench::printHeader("micro_obs: telemetry overhead + trace export",
                       "observability contract (docs/observability.md)");

#if !CCSIM_OBS
    const std::string record =
        "{\"bench\": \"obs\", \"compiled\": 0}\n";
    if (!resilience::tryAtomicWriteFile("BENCH_obs.json", record)) {
        std::fprintf(stderr, "cannot write BENCH_obs.json\n");
        return 1;
    }
    std::printf("telemetry compiled out (-DCCSIM_OBS=OFF); nothing to "
                "measure\n");
    return 0;
#else
    const std::uint64_t insts = envU64("CCSIM_OBS_INSTS", 40000);
    const std::uint64_t repeat =
        std::max<std::uint64_t>(1, envU64("CCSIM_OBS_REPEAT", 3));
    const int mix = 1;

    // ---- Section 1: overhead of the always-on telemetry shape ----
    sim::SimConfig off = baseConfig(insts);
    Timed t_off = timedRun(off, mix, repeat);

    sim::SimConfig on = baseConfig(insts);
    on.obs.enable = true;
    on.obs.sampleInterval = 25000;
    on.obs.histograms = true;
    Timed t_on = timedRun(on, mix, repeat);

    if (!sameResult(t_off.result, t_on.result)) {
        std::fprintf(stderr,
                     "ERROR: telemetry changed the simulated results "
                     "(observation-only contract violated)\n");
        return 1;
    }

    const double overhead = t_off.wallSeconds > 0
                                ? t_on.wallSeconds / t_off.wallSeconds
                                : 1.0;
    std::printf("telemetry off: %.4f s   on: %.4f s   ratio: %.3f\n",
                t_off.wallSeconds, t_on.wallSeconds, overhead);

    // ---- Section 2: trace-event export smoke (untimed) ----
    const char *trace_env = std::getenv("CCSIM_OBS_TRACE_PATH");
    const std::string trace_path =
        trace_env && *trace_env ? trace_env : "ccsim_trace.json";
    std::size_t trace_events = 0;
    {
        sim::SimConfig tr = baseConfig(insts / 4 ? insts / 4 : insts);
        tr.obs.enable = true;
        tr.obs.sampleInterval = 25000;
        tr.obs.simTrace = true;
        tr.obs.hostTrace = true;
        tr.obs.traceEventPath = trace_path;
        sim::System system(tr,
                           workloads::mixWorkloads(mix, tr.nCores));
        (void)system.run(); // flush() writes the trace file.
        trace_events = system.telemetry()->sink().size();
        if (trace_events == 0) {
            std::fprintf(stderr,
                         "ERROR: trace run recorded no events\n");
            return 1;
        }
    }
    std::printf("trace export: %zu events -> %s\n", trace_events,
                trace_path.c_str());

    const std::string record = bench::captureRecord([&](std::FILE *f) {
        std::fprintf(
            f,
            "{\"bench\": \"obs\", \"compiled\": 1, "
            "\"insts_per_core\": %llu, "
            "\"wall_off_s\": %.4f, \"wall_on_s\": %.4f, "
            "\"overhead_ratio\": %.4f, "
            "\"sim_cycles\": %llu, \"trace_events\": %zu}\n",
            (unsigned long long)insts, t_off.wallSeconds,
            t_on.wallSeconds, overhead,
            (unsigned long long)t_off.result.cpuCycles, trace_events);
    });
    if (!resilience::tryAtomicWriteFile("BENCH_obs.json", record)) {
        std::fprintf(stderr, "cannot write BENCH_obs.json\n");
        return 1;
    }
    std::printf("wrote BENCH_obs.json\n");

    if (const char *traj = std::getenv("CCSIM_BENCH_TRAJECTORY");
        traj && *traj) {
        if (!resilience::tryAtomicAppendFile(traj, record)) {
            std::fprintf(stderr, "cannot append to %s\n", traj);
            return 1;
        }
        std::printf("appended to %s\n", traj);
    }

    if (envU64("CCSIM_OBS_GATE", 0)) {
        const double limit = envF64("CCSIM_OBS_GATE_RATIO", 1.05);
        if (overhead > limit) {
            std::fprintf(stderr,
                         "GATE FAILURE: telemetry overhead %.3f exceeds "
                         "%.3f\n",
                         overhead, limit);
            return 1;
        }
        std::printf("gate ok: overhead %.3f <= %.3f\n", overhead, limit);
    }
    return 0;
#endif
}
