/**
 * @file
 * Microbenchmarks (google-benchmark): HCRAC lookup/insert, sweep
 * invalidation, and address decode throughput — the operations on the
 * memory controller's critical path. A hardware HCRAC is a single-cycle
 * structure; here we confirm the software model is cheap enough that
 * simulation speed is dominated by the DRAM timing model, not the
 * mechanism under study.
 */

#include <benchmark/benchmark.h>

#include "chargecache/hcrac.hh"
#include "common/random.hh"
#include "dram/addr.hh"

namespace {

using namespace ccsim;

void
BM_HcracLookupHit(benchmark::State &state)
{
    chargecache::Hcrac cache(
        {static_cast<int>(state.range(0)), 2});
    for (int k = 0; k < state.range(0); ++k)
        cache.insert(static_cast<std::uint64_t>(k) * 977);
    std::uint64_t k = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.lookup((k++ % state.range(0)) * 977));
    }
}
BENCHMARK(BM_HcracLookupHit)->Arg(128)->Arg(1024);

void
BM_HcracLookupMiss(benchmark::State &state)
{
    chargecache::Hcrac cache({128, 2});
    std::uint64_t k = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.lookup(k += 7919));
}
BENCHMARK(BM_HcracLookupMiss);

void
BM_HcracInsert(benchmark::State &state)
{
    chargecache::Hcrac cache({128, 2});
    std::uint64_t k = 0;
    for (auto _ : state)
        cache.insert(k += 104729);
}
BENCHMARK(BM_HcracInsert);

void
BM_SweepInvalidatorAdvance(benchmark::State &state)
{
    chargecache::Hcrac cache({128, 2});
    chargecache::SweepInvalidator sweep(800000, 128);
    Cycle now = 0;
    for (auto _ : state) {
        now += 10000;
        sweep.advanceTo(now, cache);
    }
}
BENCHMARK(BM_SweepInvalidatorAdvance);

void
BM_AddressDecode(benchmark::State &state)
{
    dram::DramSpec spec = dram::DramSpec::ddr3_1600(2);
    dram::AddressMapper mapper(spec.org, dram::MapScheme::RoBaRaCoCh);
    Rng rng(1);
    Addr line = 0;
    for (auto _ : state) {
        line = (line + 0x9E3779B97F4A7C15ull) % mapper.numLines();
        benchmark::DoNotOptimize(mapper.decode(line));
    }
}
BENCHMARK(BM_AddressDecode);

void
BM_FullAssocLookup(benchmark::State &state)
{
    chargecache::Hcrac cache({1024, 1024});
    for (int k = 0; k < 1024; ++k)
        cache.insert(static_cast<std::uint64_t>(k));
    std::uint64_t k = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.lookup(k++ % 1024));
}
BENCHMARK(BM_FullAssocLookup);

} // namespace

BENCHMARK_MAIN();
