/**
 * @file
 * Simulation-kernel microbenchmark: a 4-core Figure-7-style scheme
 * sweep (all five schemes over several workload mixes) run three ways —
 *
 *   1. seed configuration: per-cycle kernel, serial;
 *   2. event-skipping kernel, serial (kernel win in isolation);
 *   3. event-skipping kernel through the ParallelRunner (full win).
 *
 * Prints simulated CPU cycles per wall-second for each and emits
 * BENCH_kernel.json so future PRs have a perf trajectory to regress
 * against. Scale via CCSIM_KERNEL_INSTS (default 40000 insts/core) and
 * CCSIM_THREADS.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "workloads/profiles.hh"

namespace {

using namespace ccsim;

struct Point {
    int mix;
    sim::Scheme scheme;
};

struct Timed {
    double wallSeconds = 0.0;
    std::uint64_t simCycles = 0;

    double
    cyclesPerSecond() const
    {
        return wallSeconds > 0 ? double(simCycles) / wallSeconds : 0.0;
    }
};

std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *v = std::getenv(name);
    return (v && *v) ? std::strtoull(v, nullptr, 10) : def;
}

sim::SimConfig
pointConfig(const Point &p, sim::KernelMode kernel, std::uint64_t insts)
{
    sim::SimConfig cfg = sim::SimConfig::eightCore();
    cfg.nCores = 4; // Four cores per point: the paper's mid-size system.
    cfg.scheme = p.scheme;
    cfg.kernel = kernel;
    cfg.targetInsts = insts;
    cfg.warmupInsts = insts / 8;
    cfg.finalizeChargeCache();
    return cfg;
}

sim::SystemResult
runPoint(const Point &p, sim::KernelMode kernel, std::uint64_t insts)
{
    sim::SimConfig cfg = pointConfig(p, kernel, insts);
    sim::System system(cfg, workloads::mixWorkloads(p.mix, cfg.nCores));
    return system.run();
}

template <typename Fn>
Timed
timeSweep(const std::vector<Point> &points, Fn &&run_all)
{
    Timed t;
    auto start = std::chrono::steady_clock::now();
    std::vector<sim::SystemResult> results = run_all(points);
    auto end = std::chrono::steady_clock::now();
    t.wallSeconds = std::chrono::duration<double>(end - start).count();
    for (const auto &r : results)
        t.simCycles += r.cpuCycles;
    return t;
}

} // namespace

int
main()
{
    bench::printHeader("micro_kernel",
                       "kernel throughput (event-skip + parallel vs "
                       "seed per-cycle serial)");

    const std::uint64_t insts = envU64("CCSIM_KERNEL_INSTS", 40000);
    const sim::Scheme schemes[] = {
        sim::Scheme::Baseline, sim::Scheme::Nuat, sim::Scheme::ChargeCache,
        sim::Scheme::ChargeCacheNuat, sim::Scheme::LlDram};

    std::vector<Point> points;
    for (int mix = 1; mix <= 2; ++mix)
        for (sim::Scheme s : schemes)
            points.push_back({mix, s});

    std::printf("\n%zu sweep points (4-core mixes x 5 schemes), "
                "%llu insts/core, %d threads\n\n",
                points.size(), (unsigned long long)insts,
                sim::ParallelRunner::defaultThreads());

    Timed serial_percycle = timeSweep(points, [&](const auto &ps) {
        std::vector<sim::SystemResult> out;
        for (const Point &p : ps)
            out.push_back(runPoint(p, sim::KernelMode::PerCycle, insts));
        return out;
    });
    std::printf("%-24s %8.2fs  %12.0f cycles/s\n", "serial per-cycle",
                serial_percycle.wallSeconds,
                serial_percycle.cyclesPerSecond());

    Timed serial_event = timeSweep(points, [&](const auto &ps) {
        std::vector<sim::SystemResult> out;
        for (const Point &p : ps)
            out.push_back(runPoint(p, sim::KernelMode::EventSkip, insts));
        return out;
    });
    std::printf("%-24s %8.2fs  %12.0f cycles/s\n", "serial event-skip",
                serial_event.wallSeconds, serial_event.cyclesPerSecond());

    Timed parallel_event = timeSweep(points, [&](const auto &ps) {
        return sim::runSweep(ps.size(), [&](std::size_t i) {
            return runPoint(ps[i], sim::KernelMode::EventSkip, insts);
        });
    });
    std::printf("%-24s %8.2fs  %12.0f cycles/s\n", "parallel event-skip",
                parallel_event.wallSeconds,
                parallel_event.cyclesPerSecond());

    double kernel_speedup =
        serial_event.wallSeconds > 0
            ? serial_percycle.wallSeconds / serial_event.wallSeconds
            : 0.0;
    double total_speedup =
        parallel_event.wallSeconds > 0
            ? serial_percycle.wallSeconds / parallel_event.wallSeconds
            : 0.0;
    std::printf("\nkernel speedup (serial):   %.2fx\n", kernel_speedup);
    std::printf("total speedup (parallel):  %.2fx\n", total_speedup);
    if (sim::ParallelRunner::defaultThreads() <= 1)
        std::printf("note: single hardware thread — the parallel runner "
                    "cannot contribute here; on an N-thread host the "
                    "sweep additionally scales ~linearly up to "
                    "min(N, %zu) points.\n",
                    points.size());
    // Identical sim_cycles across the three modes double as an
    // equivalence check of the kernels on this exact sweep.
    if (serial_percycle.simCycles != serial_event.simCycles ||
        serial_event.simCycles != parallel_event.simCycles) {
        std::fprintf(stderr,
                     "ERROR: kernels disagree on simulated cycles\n");
        return 1;
    }

    std::FILE *json = std::fopen("BENCH_kernel.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_kernel.json\n");
        return 1;
    }
    std::fprintf(
        json,
        "{\n"
        "  \"bench\": \"kernel\",\n"
        "  \"points\": %zu,\n"
        "  \"insts_per_core\": %llu,\n"
        "  \"threads\": %d,\n"
        "  \"serial_percycle\": {\"wall_s\": %.4f, \"sim_cycles\": %llu, "
        "\"cycles_per_s\": %.0f},\n"
        "  \"serial_eventskip\": {\"wall_s\": %.4f, \"sim_cycles\": %llu, "
        "\"cycles_per_s\": %.0f},\n"
        "  \"parallel_eventskip\": {\"wall_s\": %.4f, \"sim_cycles\": %llu, "
        "\"cycles_per_s\": %.0f},\n"
        "  \"kernel_speedup\": %.3f,\n"
        "  \"total_speedup\": %.3f\n"
        "}\n",
        points.size(), (unsigned long long)insts,
        sim::ParallelRunner::defaultThreads(),
        serial_percycle.wallSeconds,
        (unsigned long long)serial_percycle.simCycles,
        serial_percycle.cyclesPerSecond(), serial_event.wallSeconds,
        (unsigned long long)serial_event.simCycles,
        serial_event.cyclesPerSecond(), parallel_event.wallSeconds,
        (unsigned long long)parallel_event.simCycles,
        parallel_event.cyclesPerSecond(), kernel_speedup, total_speedup);
    std::fclose(json);
    std::printf("wrote BENCH_kernel.json\n");
    return 0;
}
