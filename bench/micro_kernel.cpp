/**
 * @file
 * Simulation-kernel microbenchmark: a 4-core Figure-7-style scheme
 * sweep (all five schemes over several workload mixes) run four ways —
 *
 *   1. seed configuration: per-cycle kernel, serial;
 *   2. event-skipping kernel, serial;
 *   3. calendar-queue kernel, serial (the default kernel);
 *   4. calendar-queue kernel through the ParallelRunner (full win).
 *
 * Prints simulated CPU cycles per wall-second for each, emits
 * BENCH_kernel.json, and appends one compact record to the perf
 * trajectory (JSON-lines) when CCSIM_BENCH_TRAJECTORY names a file.
 *
 * With CCSIM_KERNEL_GATE=1 the binary exits non-zero when the calendar
 * kernel is slower than event-skip on this 4-core sweep (tolerance via
 * CCSIM_KERNEL_GATE_RATIO, default 1.0) — the CI perf-trajectory job's
 * regression gate.
 *
 * A second section measures the channel-sharded runner on ONE big
 * simulation (8 cores x 4 channels): serial calendar vs the scaling
 * curve shardThreads ∈ {1, 2, 4, 8}, appended to the same
 * BENCH_kernel.json record (the `shard` object, hw_threads stamped)
 * with bit-equality of the simulated cycles asserted across every
 * width. CCSIM_SHARD_GATE=1 fails the run when the 2-thread sharded
 * speedup drops below CCSIM_SHARD_GATE_RATIO (default 1.3) — enforcing
 * on runners with >= 4 hardware threads, advisory-only on exactly 3
 * (CCSIM_SHARD_GATE_ADVISORY can keep 3-thread hosts green), and
 * auto-skipped below 3 where coordinator + 2 workers cannot run in
 * parallel. On hosts with >= 5 hardware threads the gate additionally
 * requires speedup_t4 >= CCSIM_SHARD_GATE_RATIO_T4 (default 2.0).
 *
 * Scale via CCSIM_KERNEL_INSTS (default 40000 insts/core),
 * CCSIM_SHARD_INSTS (default 60000) and CCSIM_THREADS.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "resilience/io.hh"
#include "workloads/profiles.hh"

namespace {

using namespace ccsim;

struct Point {
    int mix;
    sim::Scheme scheme;
};

struct Timed {
    double wallSeconds = 0.0;
    std::uint64_t simCycles = 0;

    double
    cyclesPerSecond() const
    {
        return wallSeconds > 0 ? double(simCycles) / wallSeconds : 0.0;
    }
};

using sim::envF64;
using sim::envU64;

sim::SimConfig
pointConfig(const Point &p, sim::KernelMode kernel, std::uint64_t insts)
{
    sim::SimConfig cfg = sim::SimConfig::eightCore();
    cfg.nCores = 4; // Four cores per point: the paper's mid-size system.
    cfg.scheme = p.scheme;
    cfg.kernel = kernel;
    cfg.targetInsts = insts;
    cfg.warmupInsts = insts / 8;
    cfg.finalizeChargeCache();
    return cfg;
}

sim::SystemResult
runPoint(const Point &p, sim::KernelMode kernel, std::uint64_t insts)
{
    sim::SimConfig cfg = pointConfig(p, kernel, insts);
    sim::System system(cfg, workloads::mixWorkloads(p.mix, cfg.nCores));
    return system.run();
}

template <typename Fn>
Timed
timeSweep(const std::vector<Point> &points, Fn &&run_all)
{
    Timed t;
    auto start = std::chrono::steady_clock::now();
    std::vector<sim::SystemResult> results = run_all(points);
    auto end = std::chrono::steady_clock::now();
    t.wallSeconds = std::chrono::duration<double>(end - start).count();
    for (const auto &r : results)
        t.simCycles += r.cpuCycles;
    return t;
}

Timed
serialSweep(const std::vector<Point> &points, sim::KernelMode kernel,
            std::uint64_t insts, const char *label)
{
    // Best of CCSIM_KERNEL_REPEAT runs (default 1): the sweeps are
    // deterministic, so the minimum wall time is the least-noisy
    // estimate — the CI gate compares kernels on shared runners.
    const std::uint64_t repeat =
        std::max<std::uint64_t>(1, envU64("CCSIM_KERNEL_REPEAT", 1));
    Timed best;
    for (std::uint64_t r = 0; r < repeat; ++r) {
        Timed t = timeSweep(points, [&](const auto &ps) {
            std::vector<sim::SystemResult> out;
            for (const Point &p : ps)
                out.push_back(runPoint(p, kernel, insts));
            return out;
        });
        if (r == 0 || t.wallSeconds < best.wallSeconds)
            best = t;
    }
    std::printf("%-24s %8.2fs  %12.0f cycles/s\n", label,
                best.wallSeconds, best.cyclesPerSecond());
    return best;
}

/**
 * Channel-sharded single-simulation sweep: ONE 8-core 4-channel run,
 * serial calendar vs the scaling curve shardThreads ∈ {1, 2, 4, 8},
 * best-of-repeat walls. Simulated cycles must agree bit for bit
 * across every width. (8 threads clamps to the 4 channels — the
 * point records that over-subscription costs nothing.)
 */
struct ShardSweep {
    std::uint64_t insts = 0;
    double serialWall = 0.0;
    double wallT1 = 0.0;
    double wallT2 = 0.0;
    double wallT4 = 0.0;
    double wallT8 = 0.0;
    std::uint64_t simCycles = 0;

    double
    speedup(double wall) const
    {
        return serialWall > 0 && wall > 0 ? serialWall / wall : 0.0;
    }
};

sim::SystemResult
runShardPoint(int shard_threads, std::uint64_t insts)
{
    sim::SimConfig cfg = sim::SimConfig::eightCore();
    cfg.channels = 4; // The sharding axis: one worker per channel pair.
    cfg.scheme = sim::Scheme::ChargeCache;
    cfg.targetInsts = insts;
    cfg.warmupInsts = insts / 8;
    cfg.shardThreads = shard_threads;
    cfg.finalizeChargeCache();
    sim::System system(cfg, workloads::mixWorkloads(1, cfg.nCores));
    return system.run();
}

ShardSweep
shardSweep(std::uint64_t insts)
{
    const std::uint64_t repeat =
        std::max<std::uint64_t>(1, envU64("CCSIM_KERNEL_REPEAT", 1));
    ShardSweep s;
    s.insts = insts;
    struct Case {
        int threads;
        double ShardSweep::*wall;
        const char *label;
    };
    const Case cases[] = {{0, &ShardSweep::serialWall, "shard serial"},
                          {1, &ShardSweep::wallT1, "shard 1 thread"},
                          {2, &ShardSweep::wallT2, "shard 2 threads"},
                          {4, &ShardSweep::wallT4, "shard 4 threads"},
                          {8, &ShardSweep::wallT8, "shard 8 threads"}};
    for (const Case &c : cases) {
        double best = 0.0;
        std::uint64_t cycles = 0;
        for (std::uint64_t r = 0; r < repeat; ++r) {
            auto start = std::chrono::steady_clock::now();
            sim::SystemResult res = runShardPoint(c.threads, insts);
            auto end = std::chrono::steady_clock::now();
            double wall =
                std::chrono::duration<double>(end - start).count();
            if (r == 0 || wall < best)
                best = wall;
            cycles = res.cpuCycles;
        }
        s.*(c.wall) = best;
        if (s.simCycles == 0)
            s.simCycles = cycles;
        else if (s.simCycles != cycles) {
            std::fprintf(stderr,
                         "ERROR: sharded run (%d threads) disagrees on "
                         "simulated cycles\n",
                         c.threads);
            std::exit(1);
        }
        std::printf("%-24s %8.2fs  %12.0f cycles/s\n", c.label, best,
                    best > 0 ? double(cycles) / best : 0.0);
    }
    return s;
}

void
writeRecord(std::FILE *f, std::size_t points, std::uint64_t insts,
            const Timed &percycle, const Timed &eventskip,
            const Timed &calendar, const Timed &parallel,
            const ShardSweep &shard)
{
    std::fprintf(
        f,
        "{\"bench\": \"kernel\", \"points\": %zu, "
        "\"insts_per_core\": %llu, \"threads\": %d, "
        "\"serial_percycle\": {\"wall_s\": %.4f, \"cycles_per_s\": %.0f}, "
        "\"serial_eventskip\": {\"wall_s\": %.4f, \"cycles_per_s\": %.0f}, "
        "\"serial_calendar\": {\"wall_s\": %.4f, \"cycles_per_s\": %.0f}, "
        "\"parallel_calendar\": {\"wall_s\": %.4f, \"cycles_per_s\": %.0f}, "
        "\"sim_cycles\": %llu, "
        "\"calendar_vs_eventskip\": %.3f, "
        "\"kernel_speedup\": %.3f, \"total_speedup\": %.3f, "
        "\"shard\": {\"insts_per_core\": %llu, \"hw_threads\": %u, "
        "\"advisory\": %s, "
        "\"serial_wall_s\": %.4f, \"t1_wall_s\": %.4f, "
        "\"t2_wall_s\": %.4f, \"t4_wall_s\": %.4f, "
        "\"t8_wall_s\": %.4f, \"sim_cycles\": %llu, "
        "\"speedup_t1\": %.3f, \"speedup_t2\": %.3f, "
        "\"speedup_t4\": %.3f, \"speedup_t8\": %.3f}}\n",
        points, (unsigned long long)insts,
        sim::ParallelRunner::defaultThreads(), percycle.wallSeconds,
        percycle.cyclesPerSecond(), eventskip.wallSeconds,
        eventskip.cyclesPerSecond(), calendar.wallSeconds,
        calendar.cyclesPerSecond(), parallel.wallSeconds,
        parallel.cyclesPerSecond(),
        (unsigned long long)calendar.simCycles,
        eventskip.cyclesPerSecond() > 0
            ? calendar.cyclesPerSecond() / eventskip.cyclesPerSecond()
            : 0.0,
        percycle.wallSeconds > 0 && calendar.wallSeconds > 0
            ? percycle.wallSeconds / calendar.wallSeconds
            : 0.0,
        percycle.wallSeconds > 0 && parallel.wallSeconds > 0
            ? percycle.wallSeconds / parallel.wallSeconds
            : 0.0,
        (unsigned long long)shard.insts,
        std::thread::hardware_concurrency(),
        // On a 1-hw-thread host the sharded timings are pure handshake
        // overhead (speedup_t2 ~ 0.05), not a scaling signal: mark the
        // record advisory so trajectory consumers and the future
        // enforcing CCSIM_SHARD_GATE never ingest it.
        std::thread::hardware_concurrency() < 2 ? "true" : "false",
        shard.serialWall, shard.wallT1,
        shard.wallT2, shard.wallT4, shard.wallT8,
        (unsigned long long)shard.simCycles, shard.speedup(shard.wallT1),
        shard.speedup(shard.wallT2), shard.speedup(shard.wallT4),
        shard.speedup(shard.wallT8));
}

} // namespace

int
main()
{
    bench::printHeader("micro_kernel",
                       "kernel throughput (calendar + event-skip + "
                       "parallel vs seed per-cycle serial)");

    const std::uint64_t insts = envU64("CCSIM_KERNEL_INSTS", 40000);
    const sim::Scheme schemes[] = {
        sim::Scheme::Baseline, sim::Scheme::Nuat, sim::Scheme::ChargeCache,
        sim::Scheme::ChargeCacheNuat, sim::Scheme::LlDram};

    std::vector<Point> points;
    for (int mix = 1; mix <= 2; ++mix)
        for (sim::Scheme s : schemes)
            points.push_back({mix, s});

    std::printf("\n%zu sweep points (4-core mixes x 5 schemes), "
                "%llu insts/core, %d threads\n\n",
                points.size(), (unsigned long long)insts,
                sim::ParallelRunner::defaultThreads());

    Timed serial_percycle =
        serialSweep(points, sim::KernelMode::PerCycle, insts,
                    "serial per-cycle");
    Timed serial_event =
        serialSweep(points, sim::KernelMode::EventSkip, insts,
                    "serial event-skip");
    Timed serial_cal = serialSweep(points, sim::KernelMode::Calendar,
                                   insts, "serial calendar");

    Timed parallel_cal = timeSweep(points, [&](const auto &ps) {
        return sim::runSweep(ps.size(), [&](std::size_t i) {
            return runPoint(ps[i], sim::KernelMode::Calendar, insts);
        });
    });
    std::printf("%-24s %8.2fs  %12.0f cycles/s\n", "parallel calendar",
                parallel_cal.wallSeconds, parallel_cal.cyclesPerSecond());

    std::printf("\nchannel-sharded single simulation (8 cores x 4 "
                "channels, %llu insts/core, %u hw threads):\n",
                (unsigned long long)envU64("CCSIM_SHARD_INSTS", 60000),
                std::thread::hardware_concurrency());
    ShardSweep shard = shardSweep(envU64("CCSIM_SHARD_INSTS", 60000));
    std::printf("sharded speedup curve:     %.2fx / %.2fx / %.2fx / "
                "%.2fx (1 / 2 / 4 / 8 threads)\n",
                shard.speedup(shard.wallT1), shard.speedup(shard.wallT2),
                shard.speedup(shard.wallT4), shard.speedup(shard.wallT8));
    if (std::thread::hardware_concurrency() < 3)
        std::printf("note: %u hardware threads — the sharded runner "
                    "needs coordinator + workers in parallel to win; "
                    "numbers above measure protocol overhead only.\n",
                    std::thread::hardware_concurrency());

    double kernel_speedup =
        serial_cal.wallSeconds > 0
            ? serial_percycle.wallSeconds / serial_cal.wallSeconds
            : 0.0;
    double cal_vs_event =
        serial_event.cyclesPerSecond() > 0
            ? serial_cal.cyclesPerSecond() / serial_event.cyclesPerSecond()
            : 0.0;
    std::printf("\ncalendar vs per-cycle:     %.2fx\n", kernel_speedup);
    std::printf("calendar vs event-skip:    %.2fx\n", cal_vs_event);
    if (sim::ParallelRunner::defaultThreads() <= 1)
        std::printf("note: single hardware thread — the parallel runner "
                    "cannot contribute here; on an N-thread host the "
                    "sweep additionally scales ~linearly up to "
                    "min(N, %zu) points.\n",
                    points.size());

    // Identical sim_cycles across all modes double as an equivalence
    // check of the kernels on this exact sweep.
    if (serial_percycle.simCycles != serial_event.simCycles ||
        serial_event.simCycles != serial_cal.simCycles ||
        serial_cal.simCycles != parallel_cal.simCycles) {
        std::fprintf(stderr,
                     "ERROR: kernels disagree on simulated cycles\n");
        return 1;
    }

    const std::string record = bench::captureRecord([&](std::FILE *f) {
        writeRecord(f, points.size(), insts, serial_percycle, serial_event,
                    serial_cal, parallel_cal, shard);
    });
    if (!resilience::tryAtomicWriteFile("BENCH_kernel.json", record)) {
        std::fprintf(stderr, "cannot write BENCH_kernel.json\n");
        return 1;
    }
    std::printf("wrote BENCH_kernel.json\n");

    if (const char *traj = std::getenv("CCSIM_BENCH_TRAJECTORY");
        traj && *traj) {
        if (!resilience::tryAtomicAppendFile(traj, record)) {
            std::fprintf(stderr, "cannot append to %s\n", traj);
            return 1;
        }
        std::printf("appended perf record to %s\n", traj);
    }

    // CI regression gate: the calendar kernel must not be slower than
    // event-skip on this sweep.
    if (envU64("CCSIM_KERNEL_GATE", 0)) {
        double tol = envF64("CCSIM_KERNEL_GATE_RATIO", 1.0);
        if (cal_vs_event < tol) {
            std::fprintf(stderr,
                         "GATE FAILED: calendar kernel is %.3fx of "
                         "event-skip (< %.3f) on the 4-core sweep\n",
                         cal_vs_event, tol);
            return 2;
        }
        std::printf("gate passed: calendar is %.2fx of event-skip "
                    "(threshold %.2f)\n",
                    cal_vs_event, tol);
    }

    // Sharded-speedup gate: the 2-thread sharded run of one big
    // simulation must beat serial by CCSIM_SHARD_GATE_RATIO, and with
    // enough hardware the 4-thread run must clear
    // CCSIM_SHARD_GATE_RATIO_T4. Skipped automatically when the host
    // cannot run coordinator + 2 workers in parallel (the protocol can
    // only cost there). The gate ENFORCES on >= 4 hardware threads;
    // on exactly 3, CCSIM_SHARD_GATE_ADVISORY=1 downgrades a failure
    // to a printed verdict (the coordinator and both workers share
    // cores there, so the margin is noise-dominated).
    if (envU64("CCSIM_SHARD_GATE", 0)) {
        const unsigned hw = std::thread::hardware_concurrency();
        const double tol = envF64("CCSIM_SHARD_GATE_RATIO", 1.3);
        const bool advisory =
            hw < 4 && envU64("CCSIM_SHARD_GATE_ADVISORY", 0);
        if (hw < 3) {
            std::printf("shard gate skipped: only %u hardware "
                        "threads\n",
                        hw);
            return 0;
        }
        bool failed = false;
        if (shard.speedup(shard.wallT2) < tol) {
            std::fprintf(stderr,
                         "GATE %s: sharded 2-thread speedup %.3fx "
                         "< %.3fx on the 8-core 4-channel run\n",
                         advisory ? "ADVISORY-FAIL (not enforced)"
                                  : "FAILED",
                         shard.speedup(shard.wallT2), tol);
            failed = true;
        }
        // The 4-thread point needs coordinator + 4 workers; only
        // demand scaling when the host can actually run them.
        const double tol4 = envF64("CCSIM_SHARD_GATE_RATIO_T4", 2.0);
        if (hw >= 5 && shard.speedup(shard.wallT4) < tol4) {
            std::fprintf(stderr,
                         "GATE %s: sharded 4-thread speedup %.3fx "
                         "< %.3fx on the 8-core 4-channel run\n",
                         advisory ? "ADVISORY-FAIL (not enforced)"
                                  : "FAILED",
                         shard.speedup(shard.wallT4), tol4);
            failed = true;
        }
        if (failed) {
            if (!advisory)
                return 2;
        } else {
            std::printf("shard gate passed: %.2fx at 2 threads "
                        "(threshold %.2f), %.2fx at 4 threads "
                        "(threshold %.2f, enforced at >= 5 hw)\n",
                        shard.speedup(shard.wallT2), tol,
                        shard.speedup(shard.wallT4), tol4);
        }
    }
    return 0;
}
