/**
 * @file
 * Simulation-kernel microbenchmark: a 4-core Figure-7-style scheme
 * sweep (all five schemes over several workload mixes) run four ways —
 *
 *   1. seed configuration: per-cycle kernel, serial;
 *   2. event-skipping kernel, serial;
 *   3. calendar-queue kernel, serial (the default kernel);
 *   4. calendar-queue kernel through the ParallelRunner (full win).
 *
 * Prints simulated CPU cycles per wall-second for each, emits
 * BENCH_kernel.json, and appends one compact record to the perf
 * trajectory (JSON-lines) when CCSIM_BENCH_TRAJECTORY names a file.
 *
 * With CCSIM_KERNEL_GATE=1 the binary exits non-zero when the calendar
 * kernel is slower than event-skip on this 4-core sweep (tolerance via
 * CCSIM_KERNEL_GATE_RATIO, default 1.0) — the CI perf-trajectory job's
 * regression gate.
 *
 * Scale via CCSIM_KERNEL_INSTS (default 40000 insts/core) and
 * CCSIM_THREADS.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "workloads/profiles.hh"

namespace {

using namespace ccsim;

struct Point {
    int mix;
    sim::Scheme scheme;
};

struct Timed {
    double wallSeconds = 0.0;
    std::uint64_t simCycles = 0;

    double
    cyclesPerSecond() const
    {
        return wallSeconds > 0 ? double(simCycles) / wallSeconds : 0.0;
    }
};

using sim::envF64;
using sim::envU64;

sim::SimConfig
pointConfig(const Point &p, sim::KernelMode kernel, std::uint64_t insts)
{
    sim::SimConfig cfg = sim::SimConfig::eightCore();
    cfg.nCores = 4; // Four cores per point: the paper's mid-size system.
    cfg.scheme = p.scheme;
    cfg.kernel = kernel;
    cfg.targetInsts = insts;
    cfg.warmupInsts = insts / 8;
    cfg.finalizeChargeCache();
    return cfg;
}

sim::SystemResult
runPoint(const Point &p, sim::KernelMode kernel, std::uint64_t insts)
{
    sim::SimConfig cfg = pointConfig(p, kernel, insts);
    sim::System system(cfg, workloads::mixWorkloads(p.mix, cfg.nCores));
    return system.run();
}

template <typename Fn>
Timed
timeSweep(const std::vector<Point> &points, Fn &&run_all)
{
    Timed t;
    auto start = std::chrono::steady_clock::now();
    std::vector<sim::SystemResult> results = run_all(points);
    auto end = std::chrono::steady_clock::now();
    t.wallSeconds = std::chrono::duration<double>(end - start).count();
    for (const auto &r : results)
        t.simCycles += r.cpuCycles;
    return t;
}

Timed
serialSweep(const std::vector<Point> &points, sim::KernelMode kernel,
            std::uint64_t insts, const char *label)
{
    // Best of CCSIM_KERNEL_REPEAT runs (default 1): the sweeps are
    // deterministic, so the minimum wall time is the least-noisy
    // estimate — the CI gate compares kernels on shared runners.
    const std::uint64_t repeat =
        std::max<std::uint64_t>(1, envU64("CCSIM_KERNEL_REPEAT", 1));
    Timed best;
    for (std::uint64_t r = 0; r < repeat; ++r) {
        Timed t = timeSweep(points, [&](const auto &ps) {
            std::vector<sim::SystemResult> out;
            for (const Point &p : ps)
                out.push_back(runPoint(p, kernel, insts));
            return out;
        });
        if (r == 0 || t.wallSeconds < best.wallSeconds)
            best = t;
    }
    std::printf("%-24s %8.2fs  %12.0f cycles/s\n", label,
                best.wallSeconds, best.cyclesPerSecond());
    return best;
}

void
writeRecord(std::FILE *f, std::size_t points, std::uint64_t insts,
            const Timed &percycle, const Timed &eventskip,
            const Timed &calendar, const Timed &parallel)
{
    std::fprintf(
        f,
        "{\"bench\": \"kernel\", \"points\": %zu, "
        "\"insts_per_core\": %llu, \"threads\": %d, "
        "\"serial_percycle\": {\"wall_s\": %.4f, \"cycles_per_s\": %.0f}, "
        "\"serial_eventskip\": {\"wall_s\": %.4f, \"cycles_per_s\": %.0f}, "
        "\"serial_calendar\": {\"wall_s\": %.4f, \"cycles_per_s\": %.0f}, "
        "\"parallel_calendar\": {\"wall_s\": %.4f, \"cycles_per_s\": %.0f}, "
        "\"sim_cycles\": %llu, "
        "\"calendar_vs_eventskip\": %.3f, "
        "\"kernel_speedup\": %.3f, \"total_speedup\": %.3f}\n",
        points, (unsigned long long)insts,
        sim::ParallelRunner::defaultThreads(), percycle.wallSeconds,
        percycle.cyclesPerSecond(), eventskip.wallSeconds,
        eventskip.cyclesPerSecond(), calendar.wallSeconds,
        calendar.cyclesPerSecond(), parallel.wallSeconds,
        parallel.cyclesPerSecond(),
        (unsigned long long)calendar.simCycles,
        eventskip.cyclesPerSecond() > 0
            ? calendar.cyclesPerSecond() / eventskip.cyclesPerSecond()
            : 0.0,
        percycle.wallSeconds > 0 && calendar.wallSeconds > 0
            ? percycle.wallSeconds / calendar.wallSeconds
            : 0.0,
        percycle.wallSeconds > 0 && parallel.wallSeconds > 0
            ? percycle.wallSeconds / parallel.wallSeconds
            : 0.0);
}

} // namespace

int
main()
{
    bench::printHeader("micro_kernel",
                       "kernel throughput (calendar + event-skip + "
                       "parallel vs seed per-cycle serial)");

    const std::uint64_t insts = envU64("CCSIM_KERNEL_INSTS", 40000);
    const sim::Scheme schemes[] = {
        sim::Scheme::Baseline, sim::Scheme::Nuat, sim::Scheme::ChargeCache,
        sim::Scheme::ChargeCacheNuat, sim::Scheme::LlDram};

    std::vector<Point> points;
    for (int mix = 1; mix <= 2; ++mix)
        for (sim::Scheme s : schemes)
            points.push_back({mix, s});

    std::printf("\n%zu sweep points (4-core mixes x 5 schemes), "
                "%llu insts/core, %d threads\n\n",
                points.size(), (unsigned long long)insts,
                sim::ParallelRunner::defaultThreads());

    Timed serial_percycle =
        serialSweep(points, sim::KernelMode::PerCycle, insts,
                    "serial per-cycle");
    Timed serial_event =
        serialSweep(points, sim::KernelMode::EventSkip, insts,
                    "serial event-skip");
    Timed serial_cal = serialSweep(points, sim::KernelMode::Calendar,
                                   insts, "serial calendar");

    Timed parallel_cal = timeSweep(points, [&](const auto &ps) {
        return sim::runSweep(ps.size(), [&](std::size_t i) {
            return runPoint(ps[i], sim::KernelMode::Calendar, insts);
        });
    });
    std::printf("%-24s %8.2fs  %12.0f cycles/s\n", "parallel calendar",
                parallel_cal.wallSeconds, parallel_cal.cyclesPerSecond());

    double kernel_speedup =
        serial_cal.wallSeconds > 0
            ? serial_percycle.wallSeconds / serial_cal.wallSeconds
            : 0.0;
    double cal_vs_event =
        serial_event.cyclesPerSecond() > 0
            ? serial_cal.cyclesPerSecond() / serial_event.cyclesPerSecond()
            : 0.0;
    std::printf("\ncalendar vs per-cycle:     %.2fx\n", kernel_speedup);
    std::printf("calendar vs event-skip:    %.2fx\n", cal_vs_event);
    if (sim::ParallelRunner::defaultThreads() <= 1)
        std::printf("note: single hardware thread — the parallel runner "
                    "cannot contribute here; on an N-thread host the "
                    "sweep additionally scales ~linearly up to "
                    "min(N, %zu) points.\n",
                    points.size());

    // Identical sim_cycles across all modes double as an equivalence
    // check of the kernels on this exact sweep.
    if (serial_percycle.simCycles != serial_event.simCycles ||
        serial_event.simCycles != serial_cal.simCycles ||
        serial_cal.simCycles != parallel_cal.simCycles) {
        std::fprintf(stderr,
                     "ERROR: kernels disagree on simulated cycles\n");
        return 1;
    }

    std::FILE *json = std::fopen("BENCH_kernel.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot write BENCH_kernel.json\n");
        return 1;
    }
    writeRecord(json, points.size(), insts, serial_percycle, serial_event,
                serial_cal, parallel_cal);
    std::fclose(json);
    std::printf("wrote BENCH_kernel.json\n");

    if (const char *traj = std::getenv("CCSIM_BENCH_TRAJECTORY");
        traj && *traj) {
        std::FILE *f = std::fopen(traj, "a");
        if (!f) {
            std::fprintf(stderr, "cannot append to %s\n", traj);
            return 1;
        }
        writeRecord(f, points.size(), insts, serial_percycle,
                    serial_event, serial_cal, parallel_cal);
        std::fclose(f);
        std::printf("appended perf record to %s\n", traj);
    }

    // CI regression gate: the calendar kernel must not be slower than
    // event-skip on this sweep.
    if (envU64("CCSIM_KERNEL_GATE", 0)) {
        double tol = envF64("CCSIM_KERNEL_GATE_RATIO", 1.0);
        if (cal_vs_event < tol) {
            std::fprintf(stderr,
                         "GATE FAILED: calendar kernel is %.3fx of "
                         "event-skip (< %.3f) on the 4-core sweep\n",
                         cal_vs_event, tol);
            return 2;
        }
        std::printf("gate passed: calendar is %.2fx of event-skip "
                    "(threshold %.2f)\n",
                    cal_vs_event, tol);
    }
    return 0;
}
