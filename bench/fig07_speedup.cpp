/**
 * @file
 * Figure 7: speedup of NUAT, ChargeCache, ChargeCache+NUAT and the
 * idealized LL-DRAM over the DDR3-1600 baseline.
 *   7a: 22 single-core workloads, sorted by RMPKC (IPC speedup).
 *   7b: 20 eight-core mixes (weighted speedup).
 *
 * Paper result: 1-core avg 2.1% (CC), up to 9.3%; 8-core avg 8.6% (CC),
 * 2.5% (NUAT), 9.6% (CC+NUAT), with LL-DRAM ~13% as the upper bound.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench_common.hh"
#include "workloads/profiles.hh"

namespace {

using namespace ccsim;

const sim::Scheme kSchemes[] = {
    sim::Scheme::Nuat, sim::Scheme::ChargeCache,
    sim::Scheme::ChargeCacheNuat, sim::Scheme::LlDram};

void
runSingleCore()
{
    std::printf("\n-- Figure 7a: single-core (sorted by RMPKC) --\n");
    struct Row {
        std::string workload;
        double rmpkc;
        double speedup[4];
    };
    std::vector<Row> rows;
    for (const auto &w : bench::singleWorkloads()) {
        Row row;
        row.workload = w;
        sim::SystemResult base = sim::runSingle(w, sim::Scheme::Baseline);
        row.rmpkc = base.rmpkc;
        for (int s = 0; s < 4; ++s) {
            sim::SystemResult r = sim::runSingle(w, kSchemes[s]);
            row.speedup[s] = r.ipc[0] / base.ipc[0];
        }
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.rmpkc < b.rmpkc; });

    std::printf("%-12s %7s %8s %8s %9s %9s\n", "workload", "RMPKC",
                "NUAT", "CC", "CC+NUAT", "LL-DRAM");
    std::vector<double> avg[4];
    for (const auto &row : rows) {
        std::printf("%-12s %7.2f %+7.2f%% %+7.2f%% %+8.2f%% %+8.2f%%\n",
                    row.workload.c_str(), row.rmpkc,
                    100 * (row.speedup[0] - 1), 100 * (row.speedup[1] - 1),
                    100 * (row.speedup[2] - 1),
                    100 * (row.speedup[3] - 1));
        for (int s = 0; s < 4; ++s)
            avg[s].push_back(row.speedup[s]);
    }
    std::printf("%-12s %7s", "AVG", "");
    for (int s = 0; s < 4; ++s)
        std::printf(" %+7.2f%%", 100 * (bench::geomean(avg[s]) - 1));
    std::printf("\npaper 7a AVG: NUAT<2.1%%, CC +2.1%% (max +9.3%%), "
                "LL-DRAM above CC.\n");
}

void
runEightCore()
{
    std::printf("\n-- Figure 7b: eight-core (weighted speedup) --\n");
    std::printf("%-6s %7s %8s %8s %9s %9s\n", "mix", "RMPKC", "NUAT",
                "CC", "CC+NUAT", "LL-DRAM");
    std::vector<double> avg[4];
    for (int mix : bench::mainMixes()) {
        auto names = workloads::mixWorkloads(mix);
        sim::SystemResult base = sim::runMix(mix, sim::Scheme::Baseline);
        double ws_base = sim::weightedSpeedup(names, base.ipc);
        double sp[4];
        for (int s = 0; s < 4; ++s) {
            sim::SystemResult r = sim::runMix(mix, kSchemes[s]);
            sp[s] = sim::weightedSpeedup(names, r.ipc) / ws_base;
            avg[s].push_back(sp[s]);
        }
        std::printf("w%-5d %7.2f %+7.2f%% %+7.2f%% %+8.2f%% %+8.2f%%\n",
                    mix, base.rmpkc, 100 * (sp[0] - 1), 100 * (sp[1] - 1),
                    100 * (sp[2] - 1), 100 * (sp[3] - 1));
    }
    std::printf("%-6s %7s", "AVG", "");
    for (int s = 0; s < 4; ++s)
        std::printf(" %+7.2f%%", 100 * (bench::geomean(avg[s]) - 1));
    std::printf("\npaper 7b AVG: NUAT +2.5%%, CC +8.6%%, CC+NUAT +9.6%%, "
                "LL-DRAM +13.4%%.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printHeader("fig07_speedup",
                       "Figure 7a/7b (speedup of NUAT/CC/CC+NUAT/LL-DRAM)");
    bool only_single = argc > 1 && !std::strcmp(argv[1], "--single");
    bool only_eight = argc > 1 && !std::strcmp(argv[1], "--eight");
    if (!only_eight)
        runSingleCore();
    if (!only_single)
        runEightCore();
    return 0;
}
