/**
 * @file
 * Figure 7: speedup of NUAT, ChargeCache, ChargeCache+NUAT and the
 * idealized LL-DRAM over the DDR3-1600 baseline.
 *   7a: 22 single-core workloads, sorted by RMPKC (IPC speedup).
 *   7b: 20 eight-core mixes (weighted speedup).
 *
 * Paper result: 1-core avg 2.1% (CC), up to 9.3%; 8-core avg 8.6% (CC),
 * 2.5% (NUAT), 9.6% (CC+NUAT), with LL-DRAM ~13% as the upper bound.
 */

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>

#include "bench_common.hh"
#include "workloads/profiles.hh"

namespace {

using namespace ccsim;

const sim::Scheme kSchemes[] = {
    sim::Scheme::Nuat, sim::Scheme::ChargeCache,
    sim::Scheme::ChargeCacheNuat, sim::Scheme::LlDram};

void
runSingleCore()
{
    std::printf("\n-- Figure 7a: single-core (sorted by RMPKC) --\n");
    struct Row {
        std::string workload;
        double rmpkc;
        double speedup[4];
    };
    const auto workloads = bench::singleWorkloads();
    // Fan every (workload, scheme) point across the pool; each point is
    // an independent System.
    std::vector<sim::SystemResult> base(workloads.size());
    std::vector<std::array<sim::SystemResult, 4>> per(workloads.size());
    {
        sim::ParallelRunner pool;
        for (size_t i = 0; i < workloads.size(); ++i) {
            pool.enqueue([&, i] {
                base[i] = sim::runSingle(workloads[i],
                                         sim::Scheme::Baseline);
            });
            for (int s = 0; s < 4; ++s)
                pool.enqueue([&, i, s] {
                    per[i][s] = sim::runSingle(workloads[i], kSchemes[s]);
                });
        }
        pool.waitAll();
    }
    std::vector<Row> rows;
    for (size_t i = 0; i < workloads.size(); ++i) {
        Row row;
        row.workload = workloads[i];
        row.rmpkc = base[i].rmpkc;
        for (int s = 0; s < 4; ++s)
            row.speedup[s] = per[i][s].ipc[0] / base[i].ipc[0];
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.rmpkc < b.rmpkc; });

    std::printf("%-12s %7s %8s %8s %9s %9s\n", "workload", "RMPKC",
                "NUAT", "CC", "CC+NUAT", "LL-DRAM");
    std::vector<double> avg[4];
    for (const auto &row : rows) {
        std::printf("%-12s %7.2f %+7.2f%% %+7.2f%% %+8.2f%% %+8.2f%%\n",
                    row.workload.c_str(), row.rmpkc,
                    100 * (row.speedup[0] - 1), 100 * (row.speedup[1] - 1),
                    100 * (row.speedup[2] - 1),
                    100 * (row.speedup[3] - 1));
        for (int s = 0; s < 4; ++s)
            avg[s].push_back(row.speedup[s]);
    }
    std::printf("%-12s %7s", "AVG", "");
    for (int s = 0; s < 4; ++s)
        std::printf(" %+7.2f%%", 100 * (bench::geomean(avg[s]) - 1));
    std::printf("\npaper 7a AVG: NUAT<2.1%%, CC +2.1%% (max +9.3%%), "
                "LL-DRAM above CC.\n");
}

void
runEightCore()
{
    std::printf("\n-- Figure 7b: eight-core (weighted speedup) --\n");
    std::printf("%-6s %7s %8s %8s %9s %9s\n", "mix", "RMPKC", "NUAT",
                "CC", "CC+NUAT", "LL-DRAM");
    const auto mixes = bench::mainMixes();
    std::vector<sim::SystemResult> base(mixes.size());
    std::vector<std::array<sim::SystemResult, 4>> per(mixes.size());
    {
        sim::ParallelRunner pool;
        for (size_t i = 0; i < mixes.size(); ++i) {
            pool.enqueue([&, i] {
                base[i] = sim::runMix(mixes[i], sim::Scheme::Baseline);
            });
            for (int s = 0; s < 4; ++s)
                pool.enqueue([&, i, s] {
                    per[i][s] = sim::runMix(mixes[i], kSchemes[s]);
                });
        }
        // Pre-warm the alone-IPC memo in parallel too: weighted speedup
        // divides by it for every workload of every mix.
        std::vector<std::string> alone;
        for (int mix : mixes)
            for (const auto &w : workloads::mixWorkloads(mix))
                alone.push_back(w);
        std::sort(alone.begin(), alone.end());
        alone.erase(std::unique(alone.begin(), alone.end()), alone.end());
        for (const auto &w : alone)
            pool.enqueue([w] { sim::aloneIpc(w); });
        pool.waitAll();
    }
    std::vector<double> avg[4];
    for (size_t i = 0; i < mixes.size(); ++i) {
        auto names = workloads::mixWorkloads(mixes[i]);
        double ws_base = sim::weightedSpeedup(names, base[i].ipc);
        double sp[4];
        for (int s = 0; s < 4; ++s) {
            sp[s] = sim::weightedSpeedup(names, per[i][s].ipc) / ws_base;
            avg[s].push_back(sp[s]);
        }
        std::printf("w%-5zu %7.2f %+7.2f%% %+7.2f%% %+8.2f%% %+8.2f%%\n",
                    static_cast<size_t>(mixes[i]), base[i].rmpkc,
                    100 * (sp[0] - 1), 100 * (sp[1] - 1),
                    100 * (sp[2] - 1), 100 * (sp[3] - 1));
    }
    std::printf("%-6s %7s", "AVG", "");
    for (int s = 0; s < 4; ++s)
        std::printf(" %+7.2f%%", 100 * (bench::geomean(avg[s]) - 1));
    std::printf("\npaper 7b AVG: NUAT +2.5%%, CC +8.6%%, CC+NUAT +9.6%%, "
                "LL-DRAM +13.4%%.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printHeader("fig07_speedup",
                       "Figure 7a/7b (speedup of NUAT/CC/CC+NUAT/LL-DRAM)");
    bool only_single = argc > 1 && !std::strcmp(argv[1], "--single");
    bool only_eight = argc > 1 && !std::strcmp(argv[1], "--eight");
    if (!only_eight)
        runSingleCore();
    if (!only_single)
        runEightCore();
    return 0;
}
