/**
 * @file
 * Ablation: ChargeCache under realistic OS pressure — multi-process
 * address spaces, context-switch quanta, TLB shootdowns, a page-walk
 * cache, and allocator aging.
 *
 * Three sweeps over 4-core ChargeCache mixes (TLB-hungry profiles,
 * workloads::mpMixWorkloads) with the full VM subsystem enabled:
 *
 *  1. process count × switch quantum × PWC on/off: how address-space
 *     switching dilutes TLB/HCRAC locality, how much of the page-walk
 *     traffic a split PWC removes (per-level PTW DRAM reads), and what
 *     remap-driven shootdown stalls cost;
 *  2. the PWC headline: PTW DRAM reads with the cache off vs on at the
 *     harshest switching point (`pwc_ptw_read_reduction`);
 *  3. allocator aging: HCRAC hit rate as the fragmentation ramp
 *     completes earlier and earlier in the run — the dynamic version
 *     of abl_vm_fragmentation's static contiguous→fragmented drop
 *     (`aging_monotone_decay`).
 *
 * Appends JSON lines to BENCH_vm.json (after abl_vm_fragmentation's
 * records in CI; open mode "a") plus a trailing summary, and appends
 * the summary to CCSIM_BENCH_TRAJECTORY when set — the same JSONL
 * conventions as the other benches. With CCSIM_MP_GATE=1 the run
 * exits non-zero when the PWC stops reducing PTW DRAM reads or the
 * aging decay stops being monotone.
 *
 * Scale via CCSIM_MP_INSTS (default 40000 insts/core), CCSIM_MP_MIXES
 * (default 2) and CCSIM_THREADS.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "resilience/io.hh"
#include "workloads/profiles.hh"

namespace {

using namespace ccsim;
using sim::envU64;

struct MpPoint {
    int processes;            ///< 1 = legacy single space per core.
    std::uint64_t quantum;    ///< Switch quantum (insts).
    bool pwc;
    const char *label;
};

struct Folded {
    double ipcSum = 0;
    double hcracHitRate = 0;
    double tlbMissRate = 0;
    std::uint64_t ctxSwitches = 0;
    std::uint64_t shootdowns = 0;
    std::uint64_t shootdownStalls = 0;
    std::uint64_t ptwReads = 0;
    std::uint64_t ptwUpperReads = 0;
    std::uint64_t pteFetches = 0;
    std::uint64_t pwcHits = 0;
    std::uint64_t pwcLookups = 0;
};

sim::SimConfig
mpConfig(const MpPoint &p, std::uint64_t insts)
{
    sim::SimConfig cfg = sim::SimConfig::eightCore();
    cfg.nCores = 4;
    cfg.scheme = sim::Scheme::ChargeCache;
    cfg.targetInsts = insts;
    cfg.warmupInsts = insts / 8;
    cfg.vm.enable = true;
    // A mid-sized L2 TLB keeps translation pressure measurable at
    // bench scale without drowning the data stream.
    cfg.vm.l2Entries = 256;
    cfg.vm.l2Ways = 8;
    if (p.processes > 1) {
        cfg.vm.mp.processes = p.processes;
        cfg.vm.mp.switchQuantum = p.quantum;
        cfg.vm.mp.remapPeriod = 64;
        cfg.vm.mp.shootdownCycles = 80;
    }
    cfg.vm.pwc.enable = p.pwc;
    // Real split PWCs spend most entries on the deepest upper level
    // (the PDE cache); 64/level covers the 2 MB-granular level-2
    // prefixes of these footprints instead of thrashing on them.
    cfg.vm.pwc.entriesPerLevel = 64;
    cfg.vm.pwc.ways = 8;
    cfg.finalizeChargeCache();
    return cfg;
}

Folded
fold(const std::vector<sim::SystemResult> &results, std::size_t base,
     int mixes)
{
    Folded f;
    for (int m = 0; m < mixes; ++m) {
        const sim::SystemResult &r = results[base + m];
        f.ipcSum += r.ipcSum() / mixes;
        f.hcracHitRate += r.hcracHitRate / mixes;
        f.tlbMissRate += r.vm.missRate() / mixes;
        f.ctxSwitches += r.vm.contextSwitches;
        f.shootdowns += r.vm.shootdownsSent;
        f.shootdownStalls += r.shootdownStallCycles;
        f.ptwReads += r.ctrl.ptwReads;
        f.ptwUpperReads += r.ctrl.ptwReadsByLevel[0] +
                           r.ctrl.ptwReadsByLevel[1] +
                           r.ctrl.ptwReadsByLevel[2];
        f.pteFetches += r.vm.pteFetches;
        f.pwcHits += r.vm.pwcHits();
        f.pwcLookups += r.vm.pwcLookups;
    }
    return f;
}

} // namespace

int
main()
{
    bench::printHeader(
        "abl_multiprocess",
        "OS-pressure ablation: address-space switches, TLB shootdowns, "
        "page-walk cache, allocator aging (RLTL under a live OS)");

    const std::uint64_t insts = envU64("CCSIM_MP_INSTS", 40000);
    const int mixes = static_cast<int>(envU64("CCSIM_MP_MIXES", 2));

    const std::vector<MpPoint> points = {
        {1, 0, false, "1p"},
        {1, 0, true, "1p-pwc"},
        {2, 20000, false, "2p-q20k"},
        {2, 20000, true, "2p-q20k-pwc"},
        {2, 4000, false, "2p-q4k"},
        {2, 4000, true, "2p-q4k-pwc"},
        {4, 20000, false, "4p-q20k"},
        {4, 20000, true, "4p-q20k-pwc"},
        {4, 4000, false, "4p-q4k"},
        {4, 4000, true, "4p-q4k-pwc"},
    };

    std::vector<sim::SystemResult> results =
        sim::runSweep(points.size() * mixes, [&](std::size_t i) {
            const MpPoint &p = points[i / mixes];
            int mix = static_cast<int>(i % mixes) + 1;
            sim::SimConfig cfg = mpConfig(p, insts);
            sim::System system(
                cfg, workloads::mpMixWorkloads(mix, cfg.nCores));
            return system.run();
        });

    std::printf("\n%-14s %8s %10s %9s %8s %9s %10s %10s %10s\n",
                "point", "ipc-sum", "hcrac-hit", "tlb-miss", "switch",
                "shootdwn", "sd-stalls", "ptw-reads", "ptw-upper");
    std::vector<Folded> folded(points.size());
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
        folded[pi] = fold(results, pi * mixes, mixes);
        const Folded &f = folded[pi];
        std::printf(
            "%-14s %8.3f %10.4f %9.4f %8llu %9llu %10llu %10llu %10llu\n",
            points[pi].label, f.ipcSum, f.hcracHitRate, f.tlbMissRate,
            (unsigned long long)f.ctxSwitches,
            (unsigned long long)f.shootdowns,
            (unsigned long long)f.shootdownStalls,
            (unsigned long long)f.ptwReads,
            (unsigned long long)f.ptwUpperReads);
    }

    // Headline 1: PWC cuts PTW DRAM reads at the harshest switching
    // point (2 processes, 4k quantum), located by label so the gate
    // cannot silently compare unrelated points if the table changes.
    auto point_index = [&](const char *label) {
        for (std::size_t pi = 0; pi < points.size(); ++pi)
            if (std::string(points[pi].label) == label)
                return pi;
        std::fprintf(stderr, "missing sweep point '%s'\n", label);
        std::exit(1);
    };
    const Folded &pwc_off = folded[point_index("2p-q4k")];
    const Folded &pwc_on = folded[point_index("2p-q4k-pwc")];
    const double pwc_reduction =
        pwc_on.ptwReads
            ? double(pwc_off.ptwReads) / double(pwc_on.ptwReads)
            : 0.0;
    const double pwc_upper_reduction =
        pwc_on.ptwUpperReads
            ? double(pwc_off.ptwUpperReads) / double(pwc_on.ptwUpperReads)
            : 0.0;
    const double pwc_hit_rate =
        pwc_on.pwcLookups
            ? double(pwc_on.pwcHits) / double(pwc_on.pwcLookups)
            : 0.0;
    std::printf("\npwc: ptw-dram-read reduction %.3fx (upper levels "
                "%.2fx), hit rate %.3f, pte fetches %llu -> %llu\n",
                pwc_reduction, pwc_upper_reduction, pwc_hit_rate,
                (unsigned long long)pwc_off.pteFetches,
                (unsigned long long)pwc_on.pteFetches);

    // Headline 2: allocator aging — the earlier the fragmentation ramp
    // completes, the lower the HCRAC hit rate (single-space configs so
    // the decay is purely the allocator's).
    struct AgingPoint {
        CpuCycle ramp; ///< 0 = static contiguous (no aging).
        const char *label;
    };
    const std::vector<AgingPoint> aging_points = {
        {0, "static"},
        {4000000, "ramp-4M"},
        {800000, "ramp-800k"},
        {100000, "ramp-100k"},
    };
    std::vector<sim::SystemResult> aging_results =
        sim::runSweep(aging_points.size() * mixes, [&](std::size_t i) {
            const AgingPoint &ap = aging_points[i / mixes];
            int mix = static_cast<int>(i % mixes) + 1;
            MpPoint p{1, 0, false, ap.label};
            sim::SimConfig cfg = mpConfig(p, insts);
            if (ap.ramp) {
                cfg.vm.aging.maxDegree = 1.0;
                cfg.vm.aging.rampCycles = ap.ramp;
            }
            sim::System system(
                cfg, workloads::mpMixWorkloads(mix, cfg.nCores));
            return system.run();
        });
    std::printf("\n%-12s %10s %8s\n", "aging", "hcrac-hit", "ipc-sum");
    std::vector<double> aging_hcrac(aging_points.size(), 0.0);
    std::vector<double> aging_ipc(aging_points.size(), 0.0);
    for (std::size_t ai = 0; ai < aging_points.size(); ++ai) {
        for (int m = 0; m < mixes; ++m) {
            const sim::SystemResult &r = aging_results[ai * mixes + m];
            aging_hcrac[ai] += r.hcracHitRate / mixes;
            aging_ipc[ai] += r.ipcSum() / mixes;
        }
        std::printf("%-12s %10.4f %8.3f\n", aging_points[ai].label,
                    aging_hcrac[ai], aging_ipc[ai]);
    }
    bool aging_monotone = true;
    for (std::size_t ai = 1; ai < aging_points.size(); ++ai)
        if (aging_hcrac[ai] > aging_hcrac[ai - 1] + 1e-12)
            aging_monotone = false;
    std::printf("monotone hcrac decay with earlier aging: %s\n",
                aging_monotone ? "yes" : "NO");

    auto write_points = [&](std::FILE *f) {
        for (std::size_t pi = 0; pi < points.size(); ++pi) {
            const Folded &r = folded[pi];
            std::fprintf(
                f,
                "{\"bench\": \"multiprocess\", \"point\": \"%s\", "
                "\"processes\": %d, \"quantum\": %llu, \"pwc\": %s, "
                "\"mixes\": %d, \"insts_per_core\": %llu, "
                "\"ipc_sum\": %.4f, \"hcrac_hit_rate\": %.6f, "
                "\"tlb_miss_rate\": %.6f, \"context_switches\": %llu, "
                "\"shootdowns\": %llu, \"shootdown_stall_cycles\": %llu, "
                "\"ptw_reads\": %llu, \"ptw_upper_reads\": %llu, "
                "\"pte_fetches\": %llu, \"pwc_hits\": %llu}\n",
                points[pi].label, points[pi].processes,
                (unsigned long long)points[pi].quantum,
                points[pi].pwc ? "true" : "false", mixes,
                (unsigned long long)insts, r.ipcSum, r.hcracHitRate,
                r.tlbMissRate, (unsigned long long)r.ctxSwitches,
                (unsigned long long)r.shootdowns,
                (unsigned long long)r.shootdownStalls,
                (unsigned long long)r.ptwReads,
                (unsigned long long)r.ptwUpperReads,
                (unsigned long long)r.pteFetches,
                (unsigned long long)r.pwcHits);
        }
        for (std::size_t ai = 0; ai < aging_points.size(); ++ai)
            std::fprintf(f,
                         "{\"bench\": \"multiprocess_aging\", "
                         "\"point\": \"%s\", \"ramp_cycles\": %llu, "
                         "\"hcrac_hit_rate\": %.6f, \"ipc_sum\": %.4f}\n",
                         aging_points[ai].label,
                         (unsigned long long)aging_points[ai].ramp,
                         aging_hcrac[ai], aging_ipc[ai]);
    };
    auto write_summary = [&](std::FILE *f) {
        std::fprintf(
            f,
            "{\"bench\": \"multiprocess_summary\", "
            "\"insts_per_core\": %llu, \"mixes\": %d, "
            "\"pwc_ptw_read_reduction\": %.4f, "
            "\"pwc_upper_read_reduction\": %.4f, "
            "\"pwc_hit_rate\": %.4f, "
            "\"aging_monotone_decay\": %s, "
            "\"hcrac_static\": %.6f, \"hcrac_aged_fast\": %.6f, "
            "\"shootdown_stall_cycles_2p_q4k\": %llu}\n",
            (unsigned long long)insts, mixes, pwc_reduction,
            pwc_upper_reduction, pwc_hit_rate,
            aging_monotone ? "true" : "false", aging_hcrac.front(),
            aging_hcrac.back(),
            (unsigned long long)pwc_off.shootdownStalls);
    };

    // Append: abl_vm_fragmentation owns the file's head in CI.
    const std::string record = bench::captureRecord([&](std::FILE *f) {
        write_points(f);
        write_summary(f);
    });
    if (!resilience::tryAtomicAppendFile("BENCH_vm.json", record)) {
        std::fprintf(stderr, "cannot append to BENCH_vm.json\n");
        return 1;
    }
    std::printf("appended to BENCH_vm.json\n");

    if (const char *traj = std::getenv("CCSIM_BENCH_TRAJECTORY");
        traj && *traj) {
        const std::string summary =
            bench::captureRecord([&](std::FILE *f) { write_summary(f); });
        if (!resilience::tryAtomicAppendFile(traj, summary)) {
            std::fprintf(stderr, "cannot append to %s\n", traj);
            return 1;
        }
        std::printf("appended summary to %s\n", traj);
    }

    if (envU64("CCSIM_MP_GATE", 0)) {
        // The leaf level is out of the PWC's reach by design, so the
        // gated quantity is the upper-level PTW DRAM reads — the share
        // the cache is responsible for.
        if (pwc_upper_reduction < 1.0) {
            std::fprintf(stderr,
                         "GATE FAILED: PWC no longer reduces "
                         "upper-level PTW DRAM reads (%.3fx)\n",
                         pwc_upper_reduction);
            return 2;
        }
        if (!aging_monotone) {
            std::fprintf(stderr,
                         "GATE FAILED: HCRAC hit rate no longer decays "
                         "monotonically with earlier aging\n");
            return 2;
        }
        std::printf("mp gate passed: pwc reduction %.2fx, aging decay "
                    "monotone\n",
                    pwc_reduction);
    }
    return 0;
}
